//! Exact minimum-weight perfect matching for small syndromes.
//!
//! Computes all-pairs shortest paths between defects (and to the boundary)
//! with Dijkstra, then finds the exact minimum-weight pairing by bitmask
//! dynamic programming. Exponential in the number of defects, so it is capped
//! (default 20 defects) with a greedy fallback; within the cap it plays the
//! role of the paper's most-likely-error (MLE) reference decoder for
//! calibrating the decoding factor α on small instances.
//!
//! All working state — per-defect distance/predecessor tables, the Dijkstra
//! heap, the DP tables, the greedy option list — lives in a reusable
//! [`MatchScratch`], so the steady-state decode loop is allocation-free.

use crate::fxhash::BuildFxHasher;
use crate::graph::DecodingGraph;
use crate::Decoder;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{PoisonError, RwLock};

/// Default maximum number of defects for the exact DP.
pub const DEFAULT_MAX_EXACT_DEFECTS: usize = 20;

/// Cap on memoized component solutions; a full table is flushed wholesale.
const COMP_MEMO_MAX_ENTRIES: usize = 1 << 14;

/// Component memo: sorted defect ids of an interacting component → the
/// observable mask its minimum-weight pairing contributes. Valid whenever
/// the same set reappears as a component (the partition criterion is
/// pairwise, so a component's solution never depends on the rest of the
/// syndrome), which across a Monte-Carlo batch it constantly does.
type CompMemo = HashMap<Box<[u32]>, u64, BuildFxHasher>;

/// Detector-count ceiling below which [`MatchingDecoder::new`] precomputes
/// the all-pairs distance/path tables (the tables are O(detectors²)).
pub const PRECOMPUTE_MAX_DETECTORS: usize = 512;

/// Reusable working state for [`MatchingDecoder`].
///
/// Construct with `Default::default()`; buffers grow to the largest problem
/// seen and are reused thereafter.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Flattened per-defect distance tables: `dist[k * num_nodes + node]`.
    dist: Vec<f64>,
    /// Flattened per-defect shortest-path-tree predecessor edges.
    pred: Vec<u32>,
    heap: BinaryHeap<HeapItem>,
    /// DP cost table over defect subsets.
    cost: Vec<f64>,
    /// DP choice table over defect subsets.
    choice: Vec<Match>,
    /// Greedy fallback's sorted option list.
    options: Vec<(f64, Match)>,
    /// Greedy fallback's per-defect used flags.
    used: Vec<bool>,
    /// The selected pairing.
    pairing: Vec<Match>,
    /// Component partition: union-find parents over defect indices.
    comp_parent: Vec<u32>,
    /// `(component root, defect index)` pairs, sorted to group components.
    comp_groups: Vec<(u32, u32)>,
    /// Defect indices of the component currently being solved.
    comp_rows: Vec<u32>,
    /// Per-node flags marking Dijkstra targets (defects + boundary).
    is_target: Vec<bool>,
    /// Per-defect-row flags: row's Dijkstra table is populated this decode.
    row_done: Vec<bool>,
    /// Defect ids of the component currently being solved (the memo key).
    comp_key: Vec<u32>,
}

/// Construction-time all-pairs tables: for every detector, the shortest-path
/// distance and observable mask to the boundary and to every other detector.
///
/// Built by running each detector's Dijkstra to exhaustion once at decoder
/// construction. Settled nodes carry final distances and predecessor chains,
/// and the decode-time early-exit Dijkstra explores a prefix of the same
/// deterministic settle order — so these tables are bit-identical to what the
/// per-shot searches would have produced, and consulting them changes no
/// decoding decision.
#[derive(Debug, Clone)]
struct Precomputed {
    /// `bnd_dist[d]`: distance from detector `d` to the boundary.
    bnd_dist: Vec<f64>,
    /// `bnd_mask[d]`: observable mask along that boundary path.
    bnd_mask: Vec<u64>,
    /// `pair_dist[d * nd + e]`: distance from detector `d` to detector `e`.
    pair_dist: Vec<f64>,
    /// `pair_mask[d * nd + e]`: observable mask along that path.
    pair_mask: Vec<u64>,
}

/// Exact small-instance matching decoder with greedy fallback.
///
/// # Example
///
/// ```
/// use raa_stabsim::dem::{DemError, DetectorErrorModel};
/// use raa_decode::{graph::DecodingGraph, matching::MatchingDecoder, Decoder};
///
/// let dem = DetectorErrorModel {
///     num_detectors: 2,
///     num_observables: 1,
///     errors: vec![
///         DemError { probability: 0.01, detectors: vec![0], observables: 1 },
///         DemError { probability: 0.01, detectors: vec![0, 1], observables: 0 },
///         DemError { probability: 0.01, detectors: vec![1], observables: 0 },
///     ],
/// };
/// let graph = DecodingGraph::from_dem(&dem).unwrap();
/// let decoder = MatchingDecoder::new(graph);
/// // Two adjacent defects: matched internally, no logical flip.
/// assert_eq!(decoder.predict(&[0, 1]), 0);
/// ```
#[derive(Debug)]
pub struct MatchingDecoder {
    graph: DecodingGraph,
    max_exact_defects: usize,
    precomputed: Option<Precomputed>,
    memo_enabled: bool,
    memo: RwLock<CompMemo>,
}

impl Clone for MatchingDecoder {
    fn clone(&self) -> Self {
        Self {
            graph: self.graph.clone(),
            max_exact_defects: self.max_exact_defects,
            precomputed: self.precomputed.clone(),
            memo_enabled: self.memo_enabled,
            memo: RwLock::new(
                self.memo
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            ),
        }
    }
}

impl MatchingDecoder {
    /// Builds a decoder owning `graph` with the default exact-DP cap.
    ///
    /// Graphs with at most [`PRECOMPUTE_MAX_DETECTORS`] detectors get
    /// all-pairs distance/path tables precomputed here, so singleton and
    /// two-defect components decode with no per-shot Dijkstra at all; see
    /// [`MatchingDecoder::with_precompute`] to override. Larger interacting
    /// components are solved once per distinct defect set and memoized
    /// across shots (see [`MatchingDecoder::with_memo`]).
    pub fn new(graph: DecodingGraph) -> Self {
        let mut decoder = Self {
            graph,
            max_exact_defects: DEFAULT_MAX_EXACT_DEFECTS,
            precomputed: None,
            memo_enabled: true,
            memo: RwLock::new(CompMemo::default()),
        };
        let nd = decoder.graph.num_detectors();
        if nd > 0 && nd <= PRECOMPUTE_MAX_DETECTORS {
            decoder.precomputed = Some(decoder.build_precomputed());
        }
        decoder
    }

    /// En/disables the cross-shot component memo (on by default). Decoding
    /// results are bit-identical either way — a hit replays the mask the
    /// solve would have produced; the off position exists for A/B testing
    /// and the equivalence tests.
    pub fn with_memo(mut self, enabled: bool) -> Self {
        self.memo_enabled = enabled;
        self.memo
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self
    }

    /// Enables or disables the all-pairs precompute, regardless of graph
    /// size. The tables are O(detectors²) in memory and cost one full
    /// Dijkstra per detector to build; decoding results are bit-identical
    /// either way (the tables only short-circuit searches whose outcomes
    /// they already hold).
    pub fn with_precompute(mut self, enabled: bool) -> Self {
        self.precomputed = if enabled {
            Some(self.build_precomputed())
        } else {
            None
        };
        self
    }

    /// Runs a full (no early exit) Dijkstra from every detector and records
    /// distance + path-observable mask to the boundary and to every other
    /// detector.
    fn build_precomputed(&self) -> Precomputed {
        let nd = self.graph.num_detectors();
        let n = nd + 1;
        let mut scratch = MatchScratch::default();
        scratch.dist.resize(n, f64::INFINITY);
        scratch.pred.resize(n, u32::MAX);
        // All-false targets with `targets == 0`: the early-exit counter never
        // fires, so the search settles every reachable node.
        scratch.is_target.resize(n, false);
        let mut pre = Precomputed {
            bnd_dist: vec![f64::INFINITY; nd],
            bnd_mask: vec![0; nd],
            pair_dist: vec![f64::INFINITY; nd * nd],
            pair_mask: vec![0; nd * nd],
        };
        for d in 0..nd {
            self.dijkstra(d as u32, 0, 0, &mut scratch);
            pre.bnd_dist[d] = scratch.dist[nd];
            pre.bnd_mask[d] = self.path_observables(&scratch, 0, nd as u32);
            for e in 0..nd {
                pre.pair_dist[d * nd + e] = scratch.dist[e];
                pre.pair_mask[d * nd + e] = self.path_observables(&scratch, 0, e as u32);
            }
        }
        pre
    }

    /// Sets the maximum number of defects decoded exactly (≤ 24).
    ///
    /// # Panics
    ///
    /// Panics if `cap` exceeds 24 (the DP table would be too large).
    pub fn with_max_exact_defects(mut self, cap: usize) -> Self {
        assert!(cap <= 24, "exact matching cap too large: {cap}");
        self.max_exact_defects = cap;
        // Memoized solutions depend on the cap (exact vs greedy): drop them.
        self.memo
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DecodingGraph {
        &self.graph
    }

    /// Whether a defect component of size `n` will be decoded exactly.
    ///
    /// Defects are first partitioned into independent components (defects
    /// `i`, `j` interact only when `d(i, j) < bnd(i) + bnd(j)`; otherwise
    /// routing both to the boundary is never worse than pairing them), and
    /// the cap applies per component — so syndromes far larger than the cap
    /// still decode exactly when their defects are spread out.
    pub fn is_exact_for(&self, n: usize) -> bool {
        n <= self.max_exact_defects
    }

    /// Dijkstra from `source`, writing into row `row` of the scratch tables.
    /// Terminates once every marked target (`scratch.is_target`) is settled:
    /// the pairing only needs defect→defect and defect→boundary distances,
    /// and settled targets carry final predecessor chains.
    fn dijkstra(&self, source: u32, row: usize, targets: usize, scratch: &mut MatchScratch) {
        let nd = self.graph.num_detectors();
        let boundary = nd;
        let n = nd + 1;
        let dist = &mut scratch.dist[row * n..(row + 1) * n];
        let pred = &mut scratch.pred[row * n..(row + 1) * n];
        dist.fill(f64::INFINITY);
        pred.fill(u32::MAX);
        scratch.heap.clear();
        dist[source as usize] = 0.0;
        scratch.heap.push(HeapItem {
            dist: 0.0,
            node: source,
        });
        let mut remaining = targets;
        while let Some(HeapItem { dist: d, node }) = scratch.heap.pop() {
            if d > dist[node as usize] {
                continue;
            }
            if scratch.is_target[node as usize] {
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
            if node as usize == boundary {
                // Paths through the boundary are not physical error chains.
                continue;
            }
            for &ei in self.graph.incident(node) {
                let e = &self.graph.edges()[ei as usize];
                let other = if e.u == node {
                    e.v.unwrap_or(boundary as u32)
                } else {
                    e.u
                };
                let nd2 = d + e.weight;
                if nd2 < dist[other as usize] {
                    dist[other as usize] = nd2;
                    pred[other as usize] = ei;
                    scratch.heap.push(HeapItem {
                        dist: nd2,
                        node: other,
                    });
                }
            }
        }
    }

    /// Observable mask along defect `row`'s shortest-path tree from `from`
    /// back to the tree's source.
    fn path_observables(&self, scratch: &MatchScratch, row: usize, mut from: u32) -> u64 {
        let boundary = self.graph.num_detectors() as u32;
        let n = self.graph.num_detectors() + 1;
        let pred = &scratch.pred[row * n..(row + 1) * n];
        let mut mask = 0u64;
        while pred[from as usize] != u32::MAX {
            let e = &self.graph.edges()[pred[from as usize] as usize];
            mask ^= e.observables;
            let next = if e.u == from {
                e.v.unwrap_or(boundary)
            } else {
                e.u
            };
            if next == from {
                break;
            }
            from = next;
            if pred[from as usize] == u32::MAX {
                break;
            }
            if from == boundary {
                break;
            }
        }
        mask
    }

    /// Decodes with a fresh scratch; prefer
    /// [`MatchingDecoder::decode_into`] in loops.
    pub fn decode(&self, defects: &[u32]) -> u64 {
        self.decode_into(defects, &mut MatchScratch::default())
    }

    /// Decodes exactly (if within the cap) or greedily, reusing `scratch`.
    pub fn decode_into(&self, defects: &[u32], scratch: &mut MatchScratch) -> u64 {
        let k = defects.len();
        if k == 0 {
            return 0;
        }
        let n = self.graph.num_detectors() + 1;
        let boundary = self.graph.num_detectors();
        if scratch.dist.len() < k * n {
            scratch.dist.resize(k * n, f64::INFINITY);
            scratch.pred.resize(k * n, u32::MAX);
        }
        scratch.is_target.clear();
        scratch.is_target.resize(n, false);
        scratch.is_target[boundary] = true;
        for &d in defects {
            scratch.is_target[d as usize] = true;
        }
        // Distinct targets: boundary + distinct defects (duplicates in the
        // syndrome would otherwise make the early-exit count unreachable).
        let targets = 1 + scratch.is_target[..boundary].iter().filter(|&&t| t).count();
        let pre = self.precomputed.as_ref();
        scratch.row_done.clear();
        scratch.row_done.resize(k, pre.is_none());
        if pre.is_none() {
            for (row, &d) in defects.iter().enumerate() {
                self.dijkstra(d, row, targets, scratch);
            }
        }

        // Partition defects into independent components: i and j can only
        // end up paired in a min-weight solution when pairing beats sending
        // both to the boundary. The bitmask DP then runs per component, so
        // its 2^k cost scales with the largest interacting cluster rather
        // than the whole syndrome.
        let nd = boundary;
        scratch.comp_parent.clear();
        scratch.comp_parent.extend(0..k as u32);
        for i in 0..k {
            for j in (i + 1)..k {
                let (pc, bi, bj) = match pre {
                    Some(p) => (
                        p.pair_dist[defects[i] as usize * nd + defects[j] as usize],
                        p.bnd_dist[defects[i] as usize],
                        p.bnd_dist[defects[j] as usize],
                    ),
                    None => (
                        pair_cost(scratch, n, defects, i, j),
                        boundary_cost(scratch, n, boundary, i),
                        boundary_cost(scratch, n, boundary, j),
                    ),
                };
                if pc < bi + bj {
                    comp_union(&mut scratch.comp_parent, i as u32, j as u32);
                }
            }
        }
        scratch.comp_groups.clear();
        for i in 0..k as u32 {
            let root = comp_find(&mut scratch.comp_parent, i);
            scratch.comp_groups.push((root, i));
        }
        scratch.comp_groups.sort_unstable();

        scratch.pairing.clear();
        let mut mask = 0u64;
        let mut g0 = 0usize;
        while g0 < k {
            let root = scratch.comp_groups[g0].0;
            let mut g1 = g0;
            while g1 < k && scratch.comp_groups[g1].0 == root {
                g1 += 1;
            }
            scratch.comp_rows.clear();
            for gi in g0..g1 {
                scratch.comp_rows.push(scratch.comp_groups[gi].1);
            }
            let rows = std::mem::take(&mut scratch.comp_rows);
            if let Some(p) = pre {
                // Short-circuit the two commonest component shapes straight
                // to the precomputed path masks — no per-shot Dijkstra.
                if rows.len() == 1 {
                    // A singleton's only option is its boundary path.
                    mask ^= p.bnd_mask[defects[rows[0] as usize] as usize];
                    scratch.comp_rows = rows;
                    g0 = g1;
                    continue;
                }
                if rows.len() == 2 && self.is_exact_for(2) {
                    // A pair component exists precisely because pairing beats
                    // two boundary exits, so the 2-defect exact DP always
                    // chooses `Pair(rows[0], rows[1])` — whose mask is row 0's
                    // tree walked from defect 1, i.e. the precomputed pair
                    // path. (The greedy fallback may still split a pair to
                    // both boundaries, hence the `is_exact_for` gate.)
                    let (a, b) = (rows[0] as usize, rows[1] as usize);
                    mask ^= p.pair_mask[defects[a] as usize * nd + defects[b] as usize];
                    scratch.comp_rows = rows;
                    g0 = g1;
                    continue;
                }
            }
            // A larger interacting component: its pairing is a pure
            // function of its defect set (the partition criterion is
            // pairwise), so solve each distinct set once and memoize the
            // mask it contributes — across shots these repeat constantly.
            let memoize = self.memo_enabled && rows.len() >= 3;
            if memoize {
                scratch.comp_key.clear();
                scratch
                    .comp_key
                    .extend(rows.iter().map(|&r| defects[r as usize]));
                let memo = self.memo.read().unwrap_or_else(PoisonError::into_inner);
                if let Some(&m) = memo.get(scratch.comp_key.as_slice()) {
                    mask ^= m;
                    scratch.comp_rows = rows;
                    g0 = g1;
                    continue;
                }
            }
            if pre.is_some() {
                // Localize the early-exit targets to this component plus
                // the boundary: the pairing reads only intra-component and
                // boundary entries, and an early-exit Dijkstra settles a
                // deterministic prefix, so the values read are identical —
                // it just stops (much) sooner.
                for t in scratch.is_target.iter_mut() {
                    *t = false;
                }
                scratch.is_target[boundary] = true;
                for &r in &rows {
                    scratch.is_target[defects[r as usize] as usize] = true;
                }
                let local_targets =
                    1 + scratch.is_target[..boundary].iter().filter(|&&t| t).count();
                for &r in &rows {
                    if !scratch.row_done[r as usize] {
                        self.dijkstra(defects[r as usize], r as usize, local_targets, scratch);
                        scratch.row_done[r as usize] = true;
                    }
                }
            }
            let pairing_start = scratch.pairing.len();
            if rows.len() <= self.max_exact_defects {
                exact_pairing(&rows, defects, boundary, n, scratch);
            } else {
                greedy_pairing(&rows, defects, boundary, n, scratch);
            }
            let mut contrib = 0u64;
            for pi in pairing_start..scratch.pairing.len() {
                match scratch.pairing[pi] {
                    Match::Pair(i, j) => {
                        contrib ^= self.path_observables(scratch, i as usize, defects[j as usize]);
                    }
                    Match::Boundary(i) => {
                        contrib ^= self.path_observables(scratch, i as usize, boundary as u32);
                    }
                }
            }
            mask ^= contrib;
            if memoize {
                let mut memo = self.memo.write().unwrap_or_else(PoisonError::into_inner);
                if memo.len() >= COMP_MEMO_MAX_ENTRIES {
                    memo.clear();
                }
                memo.insert(scratch.comp_key.as_slice().into(), contrib);
            }
            scratch.comp_rows = rows;
            g0 = g1;
        }
        mask
    }
}

impl Decoder for MatchingDecoder {
    type Scratch = MatchScratch;

    fn predict_into(&self, defects: &[u32], scratch: &mut MatchScratch) -> u64 {
        self.decode_into(defects, scratch)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Match {
    Pair(u32, u32),
    Boundary(u32),
}

/// Cost of pairing defects `i` and `j` via defect `i`'s distance table.
#[inline]
fn pair_cost(scratch: &MatchScratch, n: usize, defects: &[u32], i: usize, j: usize) -> f64 {
    scratch.dist[i * n + defects[j] as usize]
}

/// Cost of sending defect `i` to the boundary.
#[inline]
fn boundary_cost(scratch: &MatchScratch, n: usize, boundary: usize, i: usize) -> f64 {
    scratch.dist[i * n + boundary]
}

/// Union-find `find` over the component-partition parents.
fn comp_find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        let gp = parent[parent[x as usize] as usize];
        parent[x as usize] = gp;
        x = gp;
    }
    x
}

/// Union-find `union` over the component-partition parents.
fn comp_union(parent: &mut [u32], a: u32, b: u32) {
    let (ra, rb) = (comp_find(parent, a), comp_find(parent, b));
    if ra != rb {
        parent[rb as usize] = ra;
    }
}

/// Exact min-cost pairing of the defects in `rows` by bitmask DP: every
/// defect pairs with another or with the boundary. Appends the chosen
/// pairing (in global defect indices) to `scratch.pairing`.
fn exact_pairing(
    rows: &[u32],
    defects: &[u32],
    boundary: usize,
    n: usize,
    scratch: &mut MatchScratch,
) {
    let g = rows.len();
    let full = (1usize << g) - 1;
    scratch.cost.clear();
    scratch.cost.resize(full + 1, f64::INFINITY);
    scratch.choice.clear();
    scratch.choice.resize(full + 1, Match::Boundary(u32::MAX));
    scratch.cost[0] = 0.0;
    for mask in 1..=full {
        let i = mask.trailing_zeros() as usize;
        let gi = rows[i] as usize;
        // Option A: defect i to boundary.
        let rest = mask & !(1 << i);
        let c = scratch.cost[rest] + boundary_cost(scratch, n, boundary, gi);
        if c < scratch.cost[mask] {
            scratch.cost[mask] = c;
            scratch.choice[mask] = Match::Boundary(i as u32);
        }
        // Option B: defect i paired with j.
        let mut rem = rest;
        while rem != 0 {
            let j = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            let c = scratch.cost[mask & !(1 << i) & !(1 << j)]
                + pair_cost(scratch, n, defects, gi, rows[j] as usize);
            if c < scratch.cost[mask] {
                scratch.cost[mask] = c;
                scratch.choice[mask] = Match::Pair(i as u32, j as u32);
            }
        }
    }
    let mut mask = full;
    while mask != 0 {
        let m = scratch.choice[mask];
        match m {
            Match::Boundary(i) => {
                scratch.pairing.push(Match::Boundary(rows[i as usize]));
                mask &= !(1 << i);
            }
            Match::Pair(i, j) => {
                scratch
                    .pairing
                    .push(Match::Pair(rows[i as usize], rows[j as usize]));
                mask &= !(1 << i);
                mask &= !(1 << j);
            }
        }
    }
}

/// Greedy pairing of the defects in `rows`: repeatedly take the cheapest
/// remaining option. Appends the chosen pairing (in global defect indices)
/// to `scratch.pairing`.
fn greedy_pairing(
    rows: &[u32],
    defects: &[u32],
    boundary: usize,
    n: usize,
    scratch: &mut MatchScratch,
) {
    let g = rows.len();
    scratch.options.clear();
    for i in 0..g {
        let gi = rows[i] as usize;
        scratch.options.push((
            boundary_cost(scratch, n, boundary, gi),
            Match::Boundary(i as u32),
        ));
        for (j, &rj) in rows.iter().enumerate().skip(i + 1) {
            scratch.options.push((
                pair_cost(scratch, n, defects, gi, rj as usize),
                Match::Pair(i as u32, j as u32),
            ));
        }
    }
    scratch
        .options
        .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal));
    scratch.used.clear();
    scratch.used.resize(g, false);
    for oi in 0..scratch.options.len() {
        let (_, m) = scratch.options[oi];
        match m {
            Match::Boundary(i) if !scratch.used[i as usize] => {
                scratch.used[i as usize] = true;
                scratch.pairing.push(Match::Boundary(rows[i as usize]));
            }
            Match::Pair(i, j) if !scratch.used[i as usize] && !scratch.used[j as usize] => {
                scratch.used[i as usize] = true;
                scratch.used[j as usize] = true;
                scratch
                    .pairing
                    .push(Match::Pair(rows[i as usize], rows[j as usize]));
            }
            _ => {}
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapItem {
    dist: f64,
    node: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_stabsim::dem::{DemError, DetectorErrorModel};

    fn chain(n: usize, p: f64) -> DecodingGraph {
        // B - 0 - 1 - ... - (n-1) - B, observable on the left boundary edge.
        let mut errors = vec![DemError {
            probability: p,
            detectors: vec![0],
            observables: 1,
        }];
        for i in 0..n - 1 {
            errors.push(DemError {
                probability: p,
                detectors: vec![i as u32, i as u32 + 1],
                observables: 0,
            });
        }
        errors.push(DemError {
            probability: p,
            detectors: vec![n as u32 - 1],
            observables: 0,
        });
        DecodingGraph::from_dem(&DetectorErrorModel {
            num_detectors: n,
            num_observables: 1,
            errors,
        })
        .unwrap()
    }

    #[test]
    fn single_defect_left_goes_left() {
        let d = MatchingDecoder::new(chain(5, 0.01));
        assert_eq!(d.predict(&[0]), 1);
        assert_eq!(d.predict(&[4]), 0);
    }

    #[test]
    fn middle_pair_matches_internally() {
        let d = MatchingDecoder::new(chain(5, 0.01));
        assert_eq!(d.predict(&[1, 2]), 0);
    }

    #[test]
    fn far_pair_splits_to_boundaries() {
        // Defects at both ends of a long chain: cheaper to go out both sides.
        let d = MatchingDecoder::new(chain(9, 0.01));
        assert_eq!(d.predict(&[0, 8]), 1);
    }

    #[test]
    fn four_defects_exact() {
        let d = MatchingDecoder::new(chain(9, 0.01));
        // Clusters {1,2} and {6,7}: both internal.
        assert_eq!(d.predict(&[1, 2, 6, 7]), 0);
    }

    #[test]
    fn empty_syndrome() {
        let d = MatchingDecoder::new(chain(3, 0.01));
        assert_eq!(d.predict(&[]), 0);
    }

    #[test]
    fn greedy_fallback_matches_exact_on_easy_instances() {
        let g = chain(12, 0.01);
        let exact = MatchingDecoder::new(g.clone());
        let greedy = MatchingDecoder::new(g).with_max_exact_defects(0);
        for syndrome in [vec![0u32], vec![2, 3], vec![0, 1, 10, 11], vec![5, 6]] {
            assert_eq!(
                exact.predict(&syndrome),
                greedy.predict(&syndrome),
                "syndrome {syndrome:?}"
            );
        }
    }

    #[test]
    fn scratch_reuse_is_stable() {
        let d = MatchingDecoder::new(chain(9, 0.01));
        let mut scratch = MatchScratch::default();
        for syndrome in [
            vec![0u32],
            vec![],
            vec![1, 2, 6, 7],
            vec![0, 8],
            vec![4],
            vec![2, 3],
        ] {
            assert_eq!(
                d.decode_into(&syndrome, &mut scratch),
                d.decode(&syndrome),
                "syndrome {syndrome:?}"
            );
        }
    }

    #[test]
    fn component_decomposition_scales_past_the_exact_cap() {
        // 30 defects, every one with a cheap private boundary edge and only
        // expensive links to its neighbours: the partition yields 30
        // singleton components, so the "exact" path runs even though the
        // total defect count is far beyond the 2^k DP cap.
        let n = 30usize;
        let mut errors = Vec::new();
        for i in 0..n {
            errors.push(DemError {
                probability: 0.2,
                detectors: vec![i as u32],
                observables: u64::from(i == 0),
            });
        }
        for i in 0..n - 1 {
            errors.push(DemError {
                probability: 1e-6,
                detectors: vec![i as u32, i as u32 + 1],
                observables: 0,
            });
        }
        let g = DecodingGraph::from_dem(&DetectorErrorModel {
            num_detectors: n,
            num_observables: 1,
            errors,
        })
        .unwrap();
        let d = MatchingDecoder::new(g);
        let all: Vec<u32> = (0..n as u32).collect();
        // Every defect exits through its own boundary edge; only defect 0
        // carries the observable.
        assert_eq!(d.predict(&all), 1);
    }

    /// Irregular weighted graph: chain + skip links + sparse boundary exits,
    /// probabilities varied deterministically so shortest paths differ per
    /// node and exercise non-trivial path masks.
    fn tangle(n: usize) -> DecodingGraph {
        let p_of = |i: usize| 0.01 + 0.015 * ((i * 7919 % 13) as f64) / 13.0;
        let mut errors = Vec::new();
        for i in 0..n - 1 {
            errors.push(DemError {
                probability: p_of(i),
                detectors: vec![i as u32, i as u32 + 1],
                observables: 1 << (i % 3),
            });
        }
        for i in 0..n - 2 {
            errors.push(DemError {
                probability: p_of(i + n),
                detectors: vec![i as u32, i as u32 + 2],
                observables: 1 << ((i + 1) % 3),
            });
        }
        for i in (0..n).step_by(3) {
            errors.push(DemError {
                probability: p_of(i + 2 * n),
                detectors: vec![i as u32],
                observables: u64::from(i % 2 == 0),
            });
        }
        DecodingGraph::from_dem(&DetectorErrorModel {
            num_detectors: n,
            num_observables: 3,
            errors,
        })
        .unwrap()
    }

    #[test]
    fn precompute_on_off_bit_identical_on_random_syndromes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for graph in [chain(12, 0.03), tangle(14)] {
            let nd = graph.num_detectors() as u32;
            let on = MatchingDecoder::new(graph);
            assert!(
                on.precomputed.is_some(),
                "small graphs precompute by default"
            );
            let off = on.clone().with_precompute(false);
            assert!(off.precomputed.is_none());
            let mut s_on = MatchScratch::default();
            let mut s_off = MatchScratch::default();
            let mut rng = StdRng::seed_from_u64(41);
            for trial in 0..400 {
                let syndrome: Vec<u32> = (0..nd).filter(|_| rng.random_bool(0.3)).collect();
                assert_eq!(
                    on.decode_into(&syndrome, &mut s_on),
                    off.decode_into(&syndrome, &mut s_off),
                    "trial {trial}, syndrome {syndrome:?}"
                );
            }
        }
    }

    #[test]
    fn memo_on_off_bit_identical_including_warm_repeats() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for graph in [chain(12, 0.03), tangle(14)] {
            let nd = graph.num_detectors() as u32;
            let on = MatchingDecoder::new(graph);
            let off = on.clone().with_memo(false);
            let mut s_on = MatchScratch::default();
            let mut s_off = MatchScratch::default();
            let mut rng = StdRng::seed_from_u64(47);
            let syndromes: Vec<Vec<u32>> = (0..150)
                .map(|_| (0..nd).filter(|_| rng.random_bool(0.35)).collect())
                .collect();
            // Two passes: the second replays every syndrome against a warm
            // memo, so hits must reproduce the cold solves bit for bit.
            for pass in 0..2 {
                for (ti, syndrome) in syndromes.iter().enumerate() {
                    assert_eq!(
                        on.decode_into(syndrome, &mut s_on),
                        off.decode_into(syndrome, &mut s_off),
                        "pass {pass}, trial {ti}, syndrome {syndrome:?}"
                    );
                }
            }
            assert!(
                !on.memo.read().unwrap().is_empty(),
                "dense syndromes must have exercised the component memo"
            );
        }
    }

    #[test]
    fn precompute_respects_the_greedy_fallback() {
        // With the exact cap at 0 every component takes the greedy path,
        // which may split a pair to both boundaries — the pair short-circuit
        // must stay out of the way so on/off remain bit-identical.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let g = tangle(14);
        let on = MatchingDecoder::new(g).with_max_exact_defects(0);
        let off = on.clone().with_precompute(false);
        let mut s_on = MatchScratch::default();
        let mut s_off = MatchScratch::default();
        let mut rng = StdRng::seed_from_u64(43);
        for trial in 0..200 {
            let syndrome: Vec<u32> = (0..14u32).filter(|_| rng.random_bool(0.3)).collect();
            assert_eq!(
                on.decode_into(&syndrome, &mut s_on),
                off.decode_into(&syndrome, &mut s_off),
                "trial {trial}, syndrome {syndrome:?}"
            );
        }
    }

    #[test]
    fn repetition_anchors_pin_failure_counts() {
        // d = 3 / d = 5 repetition-memory anchors: the precompute must not
        // move a single Monte-Carlo failure, and the absolute counts are
        // pinned so any decision drift in matching shows up here.
        use crate::mc::{self, McConfig};
        use raa_stabsim::{Circuit, MeasRecord};

        fn repetition(d: usize, rounds: usize, p: f64) -> Circuit {
            let n_data = d;
            let n_anc = d - 1;
            let data: Vec<u32> = (0..n_data as u32).map(|i| 2 * i).collect();
            let anc: Vec<u32> = (0..n_anc as u32).map(|i| 2 * i + 1).collect();
            let mut c = Circuit::new();
            let all: Vec<u32> = (0..(n_data + n_anc) as u32).collect();
            c.r(&all);
            for round in 0..rounds {
                c.x_error(&data, p);
                let pairs: Vec<(u32, u32)> = (0..n_anc)
                    .flat_map(|i| [(data[i], anc[i]), (data[i + 1], anc[i])])
                    .collect();
                c.cx(&pairs);
                c.mr(&anc);
                for i in 0..n_anc {
                    if round == 0 {
                        c.detector(&[MeasRecord::back(n_anc - i)]);
                    } else {
                        c.detector(&[MeasRecord::back(n_anc - i), MeasRecord::back(2 * n_anc - i)]);
                    }
                }
            }
            c.m(&data);
            for i in 0..n_anc {
                c.detector(&[
                    MeasRecord::back(n_data - i),
                    MeasRecord::back(n_data - i - 1),
                    MeasRecord::back(n_data + n_anc - i),
                ]);
            }
            c.observable_include(0, &[MeasRecord::back(n_data)]);
            c
        }

        let cfg = McConfig::single_threaded();
        for (d, expected) in [(3usize, 121usize), (5usize, 57usize)] {
            let c = repetition(d, d, 0.08);
            let dem = DetectorErrorModel::from_circuit(&c);
            let g = DecodingGraph::from_dem(&dem).unwrap();
            let on = MatchingDecoder::new(g.clone());
            assert!(on.precomputed.is_some());
            let off = MatchingDecoder::new(g).with_precompute(false);
            let s_on = mc::logical_error_rate_seeded(&c, &on, 2_000, 11, &cfg).unwrap();
            let s_off = mc::logical_error_rate_seeded(&c, &off, 2_000, 11, &cfg).unwrap();
            assert_eq!(s_on.shots, 2_000);
            assert_eq!(
                s_on.failures, s_off.failures,
                "precompute moved failures at d={d}"
            );
            assert_eq!(s_on.failures, expected, "anchor drifted at d={d}");
        }
    }

    #[test]
    fn weighted_paths_respected() {
        // Heavier direct boundary edge vs light two-hop path.
        let dem = DetectorErrorModel {
            num_detectors: 2,
            num_observables: 1,
            errors: vec![
                DemError {
                    probability: 1e-8,
                    detectors: vec![0],
                    observables: 1,
                },
                DemError {
                    probability: 0.2,
                    detectors: vec![0, 1],
                    observables: 0,
                },
                DemError {
                    probability: 0.2,
                    detectors: vec![1],
                    observables: 0,
                },
            ],
        };
        let g = DecodingGraph::from_dem(&dem).unwrap();
        let d = MatchingDecoder::new(g);
        assert_eq!(d.predict(&[0]), 0, "must route around the unlikely edge");
    }
}
