//! Exact minimum-weight perfect matching for small syndromes.
//!
//! Computes all-pairs shortest paths between defects (and to the boundary)
//! with Dijkstra, then finds the exact minimum-weight pairing by bitmask
//! dynamic programming. Exponential in the number of defects, so it is capped
//! (default 20 defects) with a greedy fallback; within the cap it plays the
//! role of the paper's most-likely-error (MLE) reference decoder for
//! calibrating the decoding factor α on small instances.

use crate::graph::DecodingGraph;
use crate::Decoder;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Default maximum number of defects for the exact DP.
pub const DEFAULT_MAX_EXACT_DEFECTS: usize = 20;

/// Result of one shortest-path computation from a defect.
#[derive(Debug, Clone)]
struct ShortestPaths {
    /// dist[node]; the boundary is the last node.
    dist: Vec<f64>,
    /// Incoming edge index on the shortest path tree.
    pred: Vec<u32>,
}

/// Exact small-instance matching decoder with greedy fallback.
///
/// # Example
///
/// ```
/// use raa_stabsim::dem::{DemError, DetectorErrorModel};
/// use raa_decode::{graph::DecodingGraph, matching::MatchingDecoder, Decoder};
///
/// let dem = DetectorErrorModel {
///     num_detectors: 2,
///     num_observables: 1,
///     errors: vec![
///         DemError { probability: 0.01, detectors: vec![0], observables: 1 },
///         DemError { probability: 0.01, detectors: vec![0, 1], observables: 0 },
///         DemError { probability: 0.01, detectors: vec![1], observables: 0 },
///     ],
/// };
/// let graph = DecodingGraph::from_dem(&dem).unwrap();
/// let decoder = MatchingDecoder::new(graph);
/// // Two adjacent defects: matched internally, no logical flip.
/// assert_eq!(decoder.predict(&[0, 1]), 0);
/// ```
#[derive(Debug, Clone)]
pub struct MatchingDecoder {
    graph: DecodingGraph,
    max_exact_defects: usize,
}

impl MatchingDecoder {
    /// Builds a decoder owning `graph` with the default exact-DP cap.
    pub fn new(graph: DecodingGraph) -> Self {
        Self {
            graph,
            max_exact_defects: DEFAULT_MAX_EXACT_DEFECTS,
        }
    }

    /// Sets the maximum number of defects decoded exactly (≤ 24).
    ///
    /// # Panics
    ///
    /// Panics if `cap` exceeds 24 (the DP table would be too large).
    pub fn with_max_exact_defects(mut self, cap: usize) -> Self {
        assert!(cap <= 24, "exact matching cap too large: {cap}");
        self.max_exact_defects = cap;
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DecodingGraph {
        &self.graph
    }

    /// Whether a syndrome of `n` defects will be decoded exactly.
    pub fn is_exact_for(&self, n: usize) -> bool {
        n <= self.max_exact_defects
    }

    fn dijkstra(&self, source: u32) -> ShortestPaths {
        let nd = self.graph.num_detectors();
        let boundary = nd;
        let n = nd + 1;
        let mut dist = vec![f64::INFINITY; n];
        let mut pred = vec![u32::MAX; n];
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        dist[source as usize] = 0.0;
        heap.push(HeapItem {
            dist: 0.0,
            node: source,
        });
        while let Some(HeapItem { dist: d, node }) = heap.pop() {
            if d > dist[node as usize] {
                continue;
            }
            if node as usize == boundary {
                // Paths through the boundary are not physical error chains.
                continue;
            }
            for &ei in self.graph.incident(node) {
                let e = &self.graph.edges()[ei as usize];
                let other = if e.u == node {
                    e.v.unwrap_or(boundary as u32)
                } else {
                    e.u
                };
                let nd2 = d + e.weight;
                if nd2 < dist[other as usize] {
                    dist[other as usize] = nd2;
                    pred[other as usize] = ei;
                    heap.push(HeapItem {
                        dist: nd2,
                        node: other,
                    });
                }
            }
        }
        ShortestPaths { dist, pred }
    }

    /// Observable mask along the shortest-path tree of `paths` from `from`
    /// back to the tree's source.
    fn path_observables(&self, paths: &ShortestPaths, mut from: u32) -> u64 {
        let boundary = self.graph.num_detectors() as u32;
        let mut mask = 0u64;
        while paths.pred[from as usize] != u32::MAX {
            let e = &self.graph.edges()[paths.pred[from as usize] as usize];
            mask ^= e.observables;
            let next = if e.u == from {
                e.v.unwrap_or(boundary)
            } else {
                e.u
            };
            if next == from {
                break;
            }
            from = next;
            if paths.pred[from as usize] == u32::MAX {
                break;
            }
            if from == boundary {
                break;
            }
        }
        mask
    }

    /// Decodes exactly (if within the cap) or greedily.
    pub fn decode(&self, defects: &[u32]) -> u64 {
        let k = defects.len();
        if k == 0 {
            return 0;
        }
        let paths: Vec<ShortestPaths> = defects.iter().map(|&d| self.dijkstra(d)).collect();
        let boundary = self.graph.num_detectors();
        // Pair costs and boundary costs.
        let pair = |i: usize, j: usize| paths[i].dist[defects[j] as usize];
        let bnd = |i: usize| paths[i].dist[boundary];

        let pairing = if k <= self.max_exact_defects {
            exact_pairing(k, &pair, &bnd)
        } else {
            greedy_pairing(k, &pair, &bnd)
        };

        let mut mask = 0u64;
        for m in pairing {
            match m {
                Match::Pair(i, j) => mask ^= self.path_observables(&paths[i], defects[j]),
                Match::Boundary(i) => {
                    mask ^= self.path_observables(&paths[i], boundary as u32);
                }
            }
        }
        mask
    }
}

impl Decoder for MatchingDecoder {
    fn predict(&self, defects: &[u32]) -> u64 {
        self.decode(defects)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Match {
    Pair(usize, usize),
    Boundary(usize),
}

/// Exact min-cost pairing by bitmask DP: every defect pairs with another or
/// with the boundary.
fn exact_pairing(
    k: usize,
    pair: &dyn Fn(usize, usize) -> f64,
    bnd: &dyn Fn(usize) -> f64,
) -> Vec<Match> {
    let full = (1usize << k) - 1;
    let mut cost = vec![f64::INFINITY; full + 1];
    let mut choice: Vec<Match> = vec![Match::Boundary(usize::MAX); full + 1];
    cost[0] = 0.0;
    for mask in 1..=full {
        let i = mask.trailing_zeros() as usize;
        // Option A: defect i to boundary.
        let rest = mask & !(1 << i);
        let c = cost[rest] + bnd(i);
        if c < cost[mask] {
            cost[mask] = c;
            choice[mask] = Match::Boundary(i);
        }
        // Option B: defect i paired with j.
        let mut rem = rest;
        while rem != 0 {
            let j = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            let c = cost[mask & !(1 << i) & !(1 << j)] + pair(i, j);
            if c < cost[mask] {
                cost[mask] = c;
                choice[mask] = Match::Pair(i, j);
            }
        }
    }
    let mut out = Vec::new();
    let mut mask = full;
    while mask != 0 {
        let m = choice[mask];
        match m {
            Match::Boundary(i) => {
                out.push(m);
                mask &= !(1 << i);
            }
            Match::Pair(i, j) => {
                out.push(m);
                mask &= !(1 << i);
                mask &= !(1 << j);
            }
        }
    }
    out
}

/// Greedy pairing: repeatedly take the globally cheapest remaining option.
fn greedy_pairing(
    k: usize,
    pair: &dyn Fn(usize, usize) -> f64,
    bnd: &dyn Fn(usize) -> f64,
) -> Vec<Match> {
    #[derive(Debug)]
    struct Option_ {
        cost: f64,
        m: Match,
    }
    let mut options: Vec<Option_> = Vec::new();
    for i in 0..k {
        options.push(Option_ {
            cost: bnd(i),
            m: Match::Boundary(i),
        });
        for j in (i + 1)..k {
            options.push(Option_ {
                cost: pair(i, j),
                m: Match::Pair(i, j),
            });
        }
    }
    options.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap_or(Ordering::Equal));
    let mut used = vec![false; k];
    let mut out = Vec::new();
    for o in options {
        match o.m {
            Match::Boundary(i) if !used[i] => {
                used[i] = true;
                out.push(o.m);
            }
            Match::Pair(i, j) if !used[i] && !used[j] => {
                used[i] = true;
                used[j] = true;
                out.push(o.m);
            }
            _ => {}
        }
    }
    out
}

#[derive(Debug, PartialEq)]
struct HeapItem {
    dist: f64,
    node: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_stabsim::dem::{DemError, DetectorErrorModel};

    fn chain(n: usize, p: f64) -> DecodingGraph {
        // B - 0 - 1 - ... - (n-1) - B, observable on the left boundary edge.
        let mut errors = vec![DemError {
            probability: p,
            detectors: vec![0],
            observables: 1,
        }];
        for i in 0..n - 1 {
            errors.push(DemError {
                probability: p,
                detectors: vec![i as u32, i as u32 + 1],
                observables: 0,
            });
        }
        errors.push(DemError {
            probability: p,
            detectors: vec![n as u32 - 1],
            observables: 0,
        });
        DecodingGraph::from_dem(&DetectorErrorModel {
            num_detectors: n,
            num_observables: 1,
            errors,
        })
        .unwrap()
    }

    #[test]
    fn single_defect_left_goes_left() {
        let d = MatchingDecoder::new(chain(5, 0.01));
        assert_eq!(d.predict(&[0]), 1);
        assert_eq!(d.predict(&[4]), 0);
    }

    #[test]
    fn middle_pair_matches_internally() {
        let d = MatchingDecoder::new(chain(5, 0.01));
        assert_eq!(d.predict(&[1, 2]), 0);
    }

    #[test]
    fn far_pair_splits_to_boundaries() {
        // Defects at both ends of a long chain: cheaper to go out both sides.
        let d = MatchingDecoder::new(chain(9, 0.01));
        assert_eq!(d.predict(&[0, 8]), 1);
    }

    #[test]
    fn four_defects_exact() {
        let d = MatchingDecoder::new(chain(9, 0.01));
        // Clusters {1,2} and {6,7}: both internal.
        assert_eq!(d.predict(&[1, 2, 6, 7]), 0);
    }

    #[test]
    fn empty_syndrome() {
        let d = MatchingDecoder::new(chain(3, 0.01));
        assert_eq!(d.predict(&[]), 0);
    }

    #[test]
    fn greedy_fallback_matches_exact_on_easy_instances() {
        let g = chain(12, 0.01);
        let exact = MatchingDecoder::new(g.clone());
        let greedy = MatchingDecoder::new(g).with_max_exact_defects(0);
        for syndrome in [vec![0u32], vec![2, 3], vec![0, 1, 10, 11], vec![5, 6]] {
            assert_eq!(
                exact.predict(&syndrome),
                greedy.predict(&syndrome),
                "syndrome {syndrome:?}"
            );
        }
    }

    #[test]
    fn weighted_paths_respected() {
        // Heavier direct boundary edge vs light two-hop path.
        let dem = DetectorErrorModel {
            num_detectors: 2,
            num_observables: 1,
            errors: vec![
                DemError {
                    probability: 1e-8,
                    detectors: vec![0],
                    observables: 1,
                },
                DemError {
                    probability: 0.2,
                    detectors: vec![0, 1],
                    observables: 0,
                },
                DemError {
                    probability: 0.2,
                    detectors: vec![1],
                    observables: 0,
                },
            ],
        };
        let g = DecodingGraph::from_dem(&dem).unwrap();
        let d = MatchingDecoder::new(g);
        assert_eq!(d.predict(&[0]), 0, "must route around the unlikely edge");
    }
}
