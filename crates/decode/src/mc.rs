//! Monte-Carlo logical-error-rate estimation: sample, decode, compare.
//!
//! The estimators shard work into fixed-size batches of shots. Each batch
//! gets an independent RNG stream derived deterministically from the base
//! seed and the batch index, batches are decoded in parallel with one
//! decoder scratch per worker thread, and per-batch statistics are merged
//! in batch order — so for a given seed the returned [`DecodeStats`] are
//! **bit-identical regardless of thread count**.
//!
//! Inside a batch the pipeline is allocation-free in steady state: shots
//! are drawn through a [`Sampler`] straight into the per-worker shot-major
//! buffers (a [`SyndromeBatch`] of detector bits plus one packed
//! observable mask per shot — [`DemSampler`] writes them natively;
//! [`CircuitSampler`] simulates into a detector-major
//! [`DetectorSamples`] scratch and transposes), syndromes are extracted
//! into a reused buffer by word-skipping scans, and decoding goes through
//! [`Decoder::predict_into`] with a per-worker scratch.
//!
//! Two samplers are provided: [`CircuitSampler`] re-simulates the circuit
//! through the Pauli-frame simulator (cost ∝ circuit ops × qubits per
//! batch), while [`DemSampler`] samples a precompiled detector error model
//! directly (cost ∝ mechanisms + hits) — the fast path for deep
//! below-threshold estimates, where it is typically an order of magnitude
//! faster. Both draw from the same per-batch RNG streams, so each keeps
//! the bit-identical-across-thread-counts guarantee (though the two
//! samplers' streams — and, for depolarizing channels, their exact
//! distributions — differ from each other).

use crate::windowed::{LayerAssignment, WindowScratch, WindowState, WindowedDecoder};
use crate::Decoder;
use raa_stabsim::{
    Circuit, DemSampler, DetectorSamples, FrameSim, LayerRing, StreamingDemSampler,
    StreamingScratch, SyndromeBatch,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Why a Monte-Carlo estimate could not run.
///
/// The estimators themselves are deterministic data processing — the only
/// fallible setup step is building the worker thread pool when the caller
/// pins an explicit thread count. Surfacing that as a typed error (instead
/// of the panic it used to be) lets long-running services (`raa-sweepd`)
/// fail the one job with the bad configuration rather than losing the
/// worker process.
#[derive(Debug)]
pub enum McError {
    /// Building the per-call decode thread pool failed (bad or unsupported
    /// thread-count configuration, or thread spawn failure).
    PoolBuild {
        /// The requested worker thread count.
        requested: usize,
        /// The pool builder's error.
        detail: String,
    },
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::PoolBuild { requested, detail } => write!(
                f,
                "building the decode thread pool ({requested} threads) failed: {detail}"
            ),
        }
    }
}

impl std::error::Error for McError {}

/// A source of decoder-ready samples for the Monte-Carlo pipeline.
///
/// Implementations draw `shots` shots directly into the pipeline's native
/// shot-major form — a [`SyndromeBatch`] of detector bits plus one packed
/// observable mask per shot — reusing the caller's buffers and any
/// per-worker state in `Scratch`, so the steady-state batch loop performs
/// no heap allocation. For a fixed RNG stream the output must be
/// deterministic — the pipeline's thread-count-independence guarantee
/// samples each batch from its own derived stream.
pub trait Sampler: Sync {
    /// Per-worker reusable sampling state (e.g. frame-simulator buffers).
    type Scratch: Default + Send;

    /// Samples `shots` shots into `syndromes` + `obs_masks` (one packed
    /// mask per shot), reusing `scratch` and the output buffers.
    fn sample_into(
        &self,
        shots: usize,
        rng: &mut StdRng,
        scratch: &mut Self::Scratch,
        syndromes: &mut SyndromeBatch,
        obs_masks: &mut Vec<u64>,
    );

    /// The sample→decode fusion block size, or `None` to opt out.
    ///
    /// Returning `Some(block)` asserts a strong determinism property: for
    /// any shot count and any RNG state, sampling `n` shots in consecutive
    /// chunks of at most `block` shots through the *same* RNG produces
    /// exactly the bits that one `sample_into(n, ...)` call would. The
    /// Monte-Carlo batch loop then interleaves sampling and decoding per
    /// chunk — syndromes are decoded while still cache-resident instead of
    /// being materialized for the whole batch — without changing a single
    /// sampled bit or decode decision.
    ///
    /// The default declines: samplers with whole-batch RNG structure (the
    /// gate-level frame simulation, the streaming sampler's one base draw
    /// per batch) must not be chunked.
    fn fusion_block(&self) -> Option<usize> {
        None
    }
}

/// Samples by re-simulating the circuit through [`FrameSim`] — the
/// historical gate-level path, exact for all channels. The frame
/// simulator produces detector-major planes, so this path pays a 64×64
/// block transpose per batch on top of the gate sweep.
#[derive(Debug, Clone, Copy)]
pub struct CircuitSampler<'c> {
    circuit: &'c Circuit,
}

impl<'c> CircuitSampler<'c> {
    /// A sampler re-simulating `circuit` per batch.
    pub fn new(circuit: &'c Circuit) -> Self {
        Self { circuit }
    }
}

/// Reusable gate-level sampling state: the frame simulator's qubit planes
/// plus the detector-major intermediate the transpose reads from.
#[derive(Default)]
pub struct CircuitSamplerScratch {
    sim: FrameSim,
    samples: DetectorSamples,
}

impl Sampler for CircuitSampler<'_> {
    type Scratch = CircuitSamplerScratch;

    fn sample_into(
        &self,
        shots: usize,
        rng: &mut StdRng,
        scratch: &mut CircuitSamplerScratch,
        syndromes: &mut SyndromeBatch,
        obs_masks: &mut Vec<u64>,
    ) {
        scratch
            .sim
            .sample_into(self.circuit, shots, rng, &mut scratch.samples);
        scratch.samples.transpose_detectors_into(syndromes);
        scratch.samples.observable_masks_into(obs_masks);
    }
}

impl Sampler for DemSampler {
    type Scratch = ();

    fn sample_into(
        &self,
        shots: usize,
        rng: &mut StdRng,
        _scratch: &mut (),
        syndromes: &mut SyndromeBatch,
        obs_masks: &mut Vec<u64>,
    ) {
        self.sample_syndromes_into(shots, rng, syndromes, obs_masks);
    }

    /// The compiled sampler walks the trial space in fixed
    /// [`DemSampler::SAMPLE_BLOCK`]-shot blocks whose RNG consumption does
    /// not depend on the block's position in the batch, so chunked sampling
    /// is bit-identical to whole-batch sampling and fusion is sound.
    fn fusion_block(&self) -> Option<usize> {
        Some(DemSampler::SAMPLE_BLOCK)
    }
}

/// The time-sliced sampler as a whole-batch [`Sampler`]: materializes every
/// layer of the batch (per-layer RNG streams derived from one draw off the
/// batch stream). This is the **batch reference entry point** for the
/// streaming pipeline — [`logical_error_rate_streamed`] derives the
/// identical per-layer streams, so the two produce bit-identical
/// [`DecodeStats`] while this path spends O(circuit) memory and the
/// streamed path O(window).
impl Sampler for StreamingDemSampler {
    type Scratch = StreamingScratch;

    fn sample_into(
        &self,
        shots: usize,
        rng: &mut StdRng,
        scratch: &mut StreamingScratch,
        syndromes: &mut SyndromeBatch,
        obs_masks: &mut Vec<u64>,
    ) {
        let base = rng.random::<u64>();
        self.sample_all_into(
            shots,
            |layer| StdRng::seed_from_u64(mix_seed(base, layer as u64)),
            scratch,
            syndromes,
            obs_masks,
        );
    }

    /// Fusion must stay off: each `sample_into` call draws **one** base
    /// seed for the whole batch, so splitting a batch into chunks would
    /// draw different per-layer streams and break the bit-identity with
    /// [`logical_error_rate_streamed`].
    fn fusion_block(&self) -> Option<usize> {
        None
    }
}

/// Accumulated decoding statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Number of shots decoded.
    pub shots: usize,
    /// Shots where the predicted observable mask differed from the actual one.
    pub failures: usize,
}

impl DecodeStats {
    /// The logical error rate estimate (failures / shots).
    pub fn logical_error_rate(&self) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.failures as f64 / self.shots as f64
        }
    }

    /// Binomial standard error of the estimate.
    pub fn standard_error(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let p = self.logical_error_rate();
        (p * (1.0 - p) / self.shots as f64).sqrt()
    }

    /// Merges another batch of statistics into this one.
    pub fn merge(&mut self, other: DecodeStats) {
        self.shots += other.shots;
        self.failures += other.failures;
    }
}

/// How per-batch RNG streams derive from the base seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SeedPolicy {
    /// Batch `i` samples from `StdRng::seed_from_u64(mix(seed, i))`:
    /// batches are independent, so they can run on any thread in any order
    /// with results identical to a serial run. The default.
    #[default]
    PerBatch,
    /// All batches consume one sequential RNG stream seeded from the base
    /// seed, exactly like the historical single-threaded loop. Forces
    /// serial execution.
    Sequential,
}

/// Configuration for the Monte-Carlo estimators.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Shots per batch (bounds peak memory and sets the early-stop
    /// granularity). Default 256: small enough that modest shot counts
    /// parallelize, large enough to amortize per-batch sampling setup.
    pub batch: usize,
    /// Worker threads; `0` means rayon's default (all cores).
    pub threads: usize,
    /// Per-batch seed derivation.
    pub seed_policy: SeedPolicy,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            batch: 256,
            threads: 0,
            seed_policy: SeedPolicy::PerBatch,
        }
    }
}

impl McConfig {
    /// A config decoding serially on the calling thread.
    pub fn single_threaded() -> Self {
        Self {
            threads: 1,
            ..Self::default()
        }
    }

    /// Sets the batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        self.batch = batch;
        self
    }

    /// Sets the worker thread count (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// SplitMix64-style mix of a base seed and a stream index into an
/// independent stream seed. Used for the per-batch RNG streams here and
/// shared with the experiment engine's spec/point seed derivation
/// (`raa-sim`), so there is exactly one seed-splitting construction in the
/// stack.
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_add(1).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The independent RNG stream seed of batch `batch_index`.
fn batch_seed(seed: u64, batch_index: usize) -> u64 {
    mix_seed(seed, batch_index as u64)
}

/// Per-worker pipeline state: sampler scratch, decoder scratch and the
/// shot-major sample buffers — everything reused batch to batch, so
/// steady state performs no heap allocation.
struct Worker<S: Sampler, D: Decoder> {
    sampler_scratch: S::Scratch,
    scratch: D::Scratch,
    syndromes: SyndromeBatch,
    obs_masks: Vec<u64>,
    predicted: Vec<u64>,
}

impl<S: Sampler, D: Decoder> Worker<S, D> {
    fn new() -> Self {
        Self {
            sampler_scratch: S::Scratch::default(),
            scratch: D::Scratch::default(),
            syndromes: SyndromeBatch::default(),
            obs_masks: Vec::new(),
            predicted: Vec::new(),
        }
    }

    /// Samples and decodes one batch of shots.
    ///
    /// When the sampler advertises a [`Sampler::fusion_block`], the batch
    /// is processed in consecutive chunks of at most that many shots —
    /// sample a chunk, decode it while its syndrome words are still
    /// cache-resident, repeat. The sampler's fusion contract plus the
    /// [`Decoder::predict_batch_into`] contract make the chunked run
    /// bit-identical to materialize-then-decode, so `DecodeStats` do not
    /// depend on whether fusion kicked in.
    fn decode_batch(
        &mut self,
        sampler: &S,
        decoder: &D,
        shots: usize,
        rng: &mut StdRng,
    ) -> DecodeStats {
        let chunk = match sampler.fusion_block() {
            Some(block) => block.min(shots).max(1),
            None => shots,
        };
        let mut stats = DecodeStats::default();
        let mut done = 0usize;
        while done < shots {
            let len = chunk.min(shots - done);
            sampler.sample_into(
                len,
                rng,
                &mut self.sampler_scratch,
                &mut self.syndromes,
                &mut self.obs_masks,
            );
            decoder.predict_batch_into(&self.syndromes, &mut self.predicted, &mut self.scratch);
            for s in 0..len {
                stats.shots += 1;
                if self.predicted[s] != self.obs_masks[s] {
                    stats.failures += 1;
                }
            }
            done += len;
        }
        stats
    }
}

/// Shot count of batch `index` when `shots` total are split into
/// `batch`-sized batches.
fn batch_len(shots: usize, batch: usize, index: usize) -> usize {
    (shots - index * batch).min(batch)
}

/// Runs `f` on the ambient rayon pool (`threads == 0`) or on an explicitly
/// sized pool. Building a pool per call is only paid when the caller pins a
/// thread count — with real rayon that spawns OS threads, which would
/// otherwise dominate small estimates issued in a loop. A pool-build
/// failure is returned as [`McError::PoolBuild`] instead of panicking, so
/// a bad thread-count configuration fails one estimate, not the process.
fn run_on_pool<T>(threads: usize, f: impl FnOnce() -> T + Send) -> Result<T, McError>
where
    T: Send,
{
    if threads == 0 {
        Ok(f())
    } else {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| McError::PoolBuild {
                requested: threads,
                detail: e.to_string(),
            })?;
        Ok(pool.install(f))
    }
}

/// Estimates the logical error rate of the circuit behind `sampler` under
/// `decoder` from `shots` Monte-Carlo samples, with explicit seed and
/// configuration.
///
/// This is the sampler-generic core of the pipeline: pass a
/// [`CircuitSampler`] for gate-level re-simulation or a [`DemSampler`]
/// (compiled from the circuit's DEM) for the fast precompiled path. Work
/// is sharded into batches decoded in parallel; for a given seed and
/// sampler the result is identical for any `cfg.threads` (see
/// [`SeedPolicy`]).
///
/// # Errors
///
/// Returns [`McError::PoolBuild`] if `cfg.threads > 0` and the worker pool
/// cannot be built.
pub fn logical_error_rate_sampled<S: Sampler, D: Decoder + Sync>(
    sampler: &S,
    decoder: &D,
    shots: usize,
    seed: u64,
    cfg: &McConfig,
) -> Result<DecodeStats, McError> {
    run_batches(shots, seed, cfg, Worker::<S, D>::new, |worker, len, rng| {
        worker.decode_batch(sampler, decoder, len, rng)
    })
}

/// Sampler-agnostic batch orchestration: shards `shots` into `cfg.batch`
/// batches, runs `decode_batch(worker, batch_len, batch_rng)` per batch
/// (one reusable worker per thread via `new_worker`) and merges the
/// per-batch statistics in batch order — the single implementation of the
/// bit-identical-across-thread-counts contract shared by the whole-batch
/// and streaming pipelines.
fn run_batches<W: Send>(
    shots: usize,
    seed: u64,
    cfg: &McConfig,
    new_worker: impl Fn() -> W + Send + Sync,
    decode_batch: impl Fn(&mut W, usize, &mut StdRng) -> DecodeStats + Send + Sync,
) -> Result<DecodeStats, McError> {
    assert!(cfg.batch > 0, "batch size must be positive");
    if shots == 0 {
        return Ok(DecodeStats::default());
    }
    let num_batches = shots.div_ceil(cfg.batch);

    if matches!(cfg.seed_policy, SeedPolicy::Sequential) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut worker = new_worker();
        let mut stats = DecodeStats::default();
        for b in 0..num_batches {
            let len = batch_len(shots, cfg.batch, b);
            stats.merge(decode_batch(&mut worker, len, &mut rng));
        }
        return Ok(stats);
    }

    let per_batch: Vec<DecodeStats> = run_on_pool(cfg.threads, || {
        (0..num_batches)
            .into_par_iter()
            .map_init(&new_worker, |worker, b| {
                let mut rng = StdRng::seed_from_u64(batch_seed(seed, b));
                decode_batch(worker, batch_len(shots, cfg.batch, b), &mut rng)
            })
            .collect()
    })?;
    let mut stats = DecodeStats::default();
    for s in per_batch {
        stats.merge(s);
    }
    Ok(stats)
}

/// [`logical_error_rate_sampled`] with a [`CircuitSampler`] over `circuit`
/// (the historical gate-level entry point).
///
/// # Errors
///
/// Returns [`McError::PoolBuild`] if `cfg.threads > 0` and the worker pool
/// cannot be built.
pub fn logical_error_rate_seeded<D: Decoder + Sync>(
    circuit: &Circuit,
    decoder: &D,
    shots: usize,
    seed: u64,
    cfg: &McConfig,
) -> Result<DecodeStats, McError> {
    logical_error_rate_sampled(&CircuitSampler::new(circuit), decoder, shots, seed, cfg)
}

/// Like [`logical_error_rate_sampled`], but stops early once
/// `target_failures` failures have been seen (useful deep below threshold
/// where failures are rare); always decodes at least one batch.
///
/// Early stopping is deterministic: the result always covers exactly the
/// batch prefix `0..=B`, where `B` is the first batch at which the
/// cumulative failure count reaches the target (or all batches if it never
/// does). Worker threads poll a relaxed atomic failure counter so they stop
/// *launching* batches soon after the target is reached; any speculative
/// batches beyond `B` are discarded, keeping the result independent of
/// thread count and timing.
///
/// # Errors
///
/// Returns [`McError::PoolBuild`] if `cfg.threads > 0` and the worker pool
/// cannot be built.
pub fn logical_error_rate_until_sampled<S: Sampler, D: Decoder + Sync>(
    sampler: &S,
    decoder: &D,
    max_shots: usize,
    target_failures: usize,
    seed: u64,
    cfg: &McConfig,
) -> Result<DecodeStats, McError> {
    run_batches_until(
        max_shots,
        target_failures,
        seed,
        cfg,
        Worker::<S, D>::new,
        |worker, len, rng| worker.decode_batch(sampler, decoder, len, rng),
    )
}

/// The early-stopping counterpart of [`run_batches`]: decodes the
/// deterministic batch prefix `0..=B`, where `B` is the first batch at
/// which the cumulative failure count reaches `target_failures` (see
/// [`logical_error_rate_until_sampled`] for the contract).
fn run_batches_until<W: Send>(
    max_shots: usize,
    target_failures: usize,
    seed: u64,
    cfg: &McConfig,
    new_worker: impl Fn() -> W + Send + Sync,
    decode_batch: impl Fn(&mut W, usize, &mut StdRng) -> DecodeStats + Send + Sync,
) -> Result<DecodeStats, McError> {
    assert!(cfg.batch > 0, "batch size must be positive");
    if max_shots == 0 {
        return Ok(DecodeStats::default());
    }
    let num_batches = max_shots.div_ceil(cfg.batch);

    if matches!(cfg.seed_policy, SeedPolicy::Sequential) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut worker = new_worker();
        let mut stats = DecodeStats::default();
        for b in 0..num_batches {
            let len = batch_len(max_shots, cfg.batch, b);
            stats.merge(decode_batch(&mut worker, len, &mut rng));
            if stats.failures >= target_failures {
                break;
            }
        }
        return Ok(stats);
    }

    let mut stats = DecodeStats::default();
    let mut next = 0usize;
    while next < num_batches {
        // One parallel round over the remaining batches. Workers skip (yield
        // `None` for) batches claimed after the round's failure budget is
        // spent; since batch indices are claimed in increasing order, the
        // completed batches of a round form a contiguous prefix up to the
        // first `None`.
        let needed = target_failures.saturating_sub(stats.failures);
        let round_failures = AtomicUsize::new(0);
        let start = next;
        let results: Vec<Option<DecodeStats>> = run_on_pool(cfg.threads, || {
            (start..num_batches)
                .into_par_iter()
                .map_init(&new_worker, |worker, b| {
                    // The round's first batch always runs, guaranteeing
                    // progress even if the scheduler claims it last (and
                    // covering the target_failures == 0 degenerate case,
                    // where every other batch skips immediately).
                    if b != start && round_failures.load(Ordering::Relaxed) >= needed {
                        return None;
                    }
                    let mut rng = StdRng::seed_from_u64(batch_seed(seed, b));
                    let batch_stats =
                        decode_batch(worker, batch_len(max_shots, cfg.batch, b), &mut rng);
                    round_failures.fetch_add(batch_stats.failures, Ordering::Relaxed);
                    Some(batch_stats)
                })
                .collect()
        })?;
        for r in results {
            let Some(batch_stats) = r else { break };
            next += 1;
            stats.merge(batch_stats);
            if stats.failures >= target_failures {
                return Ok(stats);
            }
        }
        // Round ended without reaching the target inside the completed
        // prefix: loop to decode the remaining batches (the first skipped
        // batch always completes next round because the budget resets).
    }
    Ok(stats)
}

/// [`logical_error_rate_until_sampled`] with a [`CircuitSampler`] over
/// `circuit` (the historical gate-level entry point).
///
/// # Errors
///
/// Returns [`McError::PoolBuild`] if `cfg.threads > 0` and the worker pool
/// cannot be built.
pub fn logical_error_rate_until_seeded<D: Decoder + Sync>(
    circuit: &Circuit,
    decoder: &D,
    max_shots: usize,
    target_failures: usize,
    seed: u64,
    cfg: &McConfig,
) -> Result<DecodeStats, McError> {
    logical_error_rate_until_sampled(
        &CircuitSampler::new(circuit),
        decoder,
        max_shots,
        target_failures,
        seed,
        cfg,
    )
}

/// Per-worker state of the **streaming** pipeline: the sampler's rolling
/// window, a [`LayerRing`] of the open window's finalized bitplanes, one
/// [`WindowState`] per in-flight shot, and the shared windowed decode
/// scratch — everything reused batch to batch. Peak resident syndrome
/// memory is `batch × window` bits, independent of circuit depth.
struct StreamWorker {
    scratch: StreamingScratch,
    ring: LayerRing,
    states: Vec<WindowState>,
    win: WindowScratch,
    obs_masks: Vec<u64>,
    defects: Vec<u32>,
    layer_defects: Vec<u32>,
}

impl StreamWorker {
    fn new() -> Self {
        Self {
            scratch: StreamingScratch::default(),
            ring: LayerRing::default(),
            states: Vec::new(),
            win: WindowScratch::default(),
            obs_masks: Vec::new(),
            defects: Vec::new(),
            layer_defects: Vec::new(),
        }
    }

    /// Samples and decodes one batch of shots **window-major**: each layer
    /// is sampled once into the [`LayerRing`], and as soon as a window's
    /// look-ahead is complete the *whole shot block* steps through that
    /// window back to back — so the window's compiled template and its
    /// component memo stay hot across all shots — before the next layer is
    /// sampled.
    ///
    /// Draws the per-layer RNG streams exactly as the [`Sampler`] impl of
    /// [`StreamingDemSampler`] does, and runs the same window steps the
    /// per-shot `stream_push`/`stream_advance` driver would (the defect
    /// merge is XOR-identical), so the decoded realizations stay
    /// bit-identical to the whole-batch path.
    fn decode_batch<L: LayerAssignment>(
        &mut self,
        sampler: &StreamingDemSampler,
        decoder: &WindowedDecoder<L>,
        shots: usize,
        rng: &mut StdRng,
    ) -> DecodeStats {
        let base = rng.random::<u64>();
        sampler.start_batch(shots, &mut self.scratch);
        self.obs_masks.clear();
        self.obs_masks.resize(shots, 0);
        if self.states.len() < shots {
            self.states.resize_with(shots, WindowState::default);
        }
        for state in &mut self.states[..shots] {
            decoder.stream_reset(state);
        }
        let dpl = sampler.detectors_per_layer();
        let num_layers = sampler.num_layers();
        if decoder.is_global() {
            // Whole-circuit window: no steps to interleave — feed each
            // shot's defects per layer and run the one global decode.
            for layer in 0..num_layers {
                let mut layer_rng = StdRng::seed_from_u64(mix_seed(base, layer as u64));
                sampler.sample_next_layer(&mut layer_rng, &mut self.scratch, &mut self.obs_masks);
                let base_det = (layer * dpl) as u32;
                for s in 0..shots {
                    self.scratch.layer().fired_into(s, &mut self.defects);
                    for d in &mut self.defects {
                        *d += base_det;
                    }
                    decoder.stream_push(&mut self.states[s], &self.defects);
                }
            }
            let mut stats = DecodeStats::default();
            for s in 0..shots {
                let predicted = decoder.stream_finish(&mut self.states[s], &mut self.win);
                stats.shots += 1;
                if predicted != self.obs_masks[s] {
                    stats.failures += 1;
                }
            }
            return stats;
        }
        let window = decoder.commit() + decoder.buffer();
        self.ring.reset(window.min(num_layers), dpl);
        let mut next_start = 0usize;
        for layer in 0..num_layers {
            let mut layer_rng = StdRng::seed_from_u64(mix_seed(base, layer as u64));
            sampler.sample_next_layer(&mut layer_rng, &mut self.scratch, &mut self.obs_masks);
            self.ring.store(layer, self.scratch.layer());
            while next_start < num_layers && next_start + window <= layer + 1 {
                self.step_all_shots(decoder, shots, next_start, num_layers);
                next_start += decoder.commit();
            }
        }
        // Tail windows: clipped look-ahead, all still resident in the ring.
        while next_start < num_layers {
            self.step_all_shots(decoder, shots, next_start, num_layers);
            next_start += decoder.commit();
        }
        let mut stats = DecodeStats::default();
        for s in 0..shots {
            stats.shots += 1;
            if self.states[s].committed_observables() != self.obs_masks[s] {
                stats.failures += 1;
            }
        }
        stats
    }

    /// Steps every shot of the block through the window starting at layer
    /// `start`, extracting each shot's window defects from the ring.
    fn step_all_shots<L: LayerAssignment>(
        &mut self,
        decoder: &WindowedDecoder<L>,
        shots: usize,
        start: usize,
        num_layers: usize,
    ) {
        let hi = (start + decoder.commit() + decoder.buffer()).min(num_layers);
        for s in 0..shots {
            self.defects.clear();
            self.ring
                .extract_into(s, start, hi, &mut self.layer_defects, &mut self.defects);
            decoder.stream_step_fired(&mut self.states[s], &self.defects, &mut self.win);
        }
    }
}

/// Asserts that the streaming sampler and the windowed decoder describe
/// the same time-layered model.
fn check_stream_compat<L: LayerAssignment>(
    sampler: &StreamingDemSampler,
    decoder: &WindowedDecoder<L>,
) {
    assert_eq!(
        decoder.num_detectors(),
        sampler.num_detectors(),
        "sampler and decoder disagree on detector count"
    );
    assert_eq!(
        decoder.num_layers(),
        sampler.num_layers(),
        "sampler and decoder disagree on layer count"
    );
    let dpl = sampler.detectors_per_layer();
    for d in 0..decoder.num_detectors() as u32 {
        assert_eq!(
            decoder.layers().layer_of(d),
            d as usize / dpl,
            "decoder layering disagrees with the sampler at detector {d}"
        );
    }
}

/// Estimates the logical error rate through the **streaming** pipeline:
/// shots are sampled one time layer at a time from the time-sliced
/// `sampler` and fed straight into per-shot [`WindowedDecoder`] sessions,
/// so resident syndrome memory is O(batch × window) — independent of
/// circuit depth — instead of the whole-batch path's O(batch × circuit).
///
/// For a given seed the result is bit-identical across thread counts
/// **and** bit-identical to the whole-batch reference entry point
/// `logical_error_rate_sampled(sampler, decoder, ...)` with the same
/// [`StreamingDemSampler`] (both derive the same per-layer sample streams
/// and run the same window steps).
///
/// # Panics
///
/// Panics if sampler and decoder disagree on the layered model shape.
///
/// # Errors
///
/// Returns [`McError::PoolBuild`] if `cfg.threads > 0` and the worker pool
/// cannot be built.
///
/// # Example
///
/// ```
/// use raa_stabsim::{Circuit, MeasRecord, DetectorErrorModel, StreamingDemSampler};
/// use raa_decode::{graph::DecodingGraph, UniformLayers, WindowedDecoder, mc, McConfig};
///
/// // Four rounds of one repeated measurement: one detector per layer.
/// let mut c = Circuit::new();
/// c.r(&[0]);
/// for _ in 0..4 {
///     c.x_error(&[0], 0.02);
///     c.mr(&[0]);
///     c.detector(&[MeasRecord::back(1)]);
/// }
/// c.observable_include(0, &[MeasRecord::back(1)]);
///
/// let dem = DetectorErrorModel::from_circuit(&c);
/// let sampler = StreamingDemSampler::new(&dem, 1);
/// let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
/// let decoder = WindowedDecoder::new(graph, UniformLayers { detectors_per_layer: 1 }, 1, 1);
/// let stats = mc::logical_error_rate_streamed(&sampler, &decoder, 2_000, 7, &McConfig::default())
///     .expect("the default McConfig uses the ambient pool");
/// assert_eq!(stats.shots, 2_000);
/// ```
pub fn logical_error_rate_streamed<L: LayerAssignment + Sync>(
    sampler: &StreamingDemSampler,
    decoder: &WindowedDecoder<L>,
    shots: usize,
    seed: u64,
    cfg: &McConfig,
) -> Result<DecodeStats, McError> {
    check_stream_compat(sampler, decoder);
    run_batches(shots, seed, cfg, StreamWorker::new, |worker, len, rng| {
        worker.decode_batch(sampler, decoder, len, rng)
    })
}

/// Like [`logical_error_rate_streamed`], but stops early once
/// `target_failures` failures have been seen — the same deterministic
/// batch-prefix contract as [`logical_error_rate_until_sampled`].
///
/// # Errors
///
/// Returns [`McError::PoolBuild`] if `cfg.threads > 0` and the worker pool
/// cannot be built.
pub fn logical_error_rate_until_streamed<L: LayerAssignment + Sync>(
    sampler: &StreamingDemSampler,
    decoder: &WindowedDecoder<L>,
    max_shots: usize,
    target_failures: usize,
    seed: u64,
    cfg: &McConfig,
) -> Result<DecodeStats, McError> {
    check_stream_compat(sampler, decoder);
    run_batches_until(
        max_shots,
        target_failures,
        seed,
        cfg,
        StreamWorker::new,
        |worker, len, rng| worker.decode_batch(sampler, decoder, len, rng),
    )
}

/// Estimates the logical error rate of `circuit` under `decoder`.
///
/// Thin wrapper over [`logical_error_rate_seeded`]: draws a base seed from
/// `rng` and runs with the default [`McConfig`] (parallel, 256-shot
/// batches). For explicit thread/batch control use the seeded variant.
///
/// # Example
///
/// ```
/// use raa_stabsim::{Circuit, MeasRecord, DetectorErrorModel};
/// use raa_decode::{graph::DecodingGraph, unionfind::UnionFindDecoder, mc};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new();
/// c.r(&[0, 1, 2, 3, 4]);
/// c.x_error(&[0, 2, 4], 0.05);
/// c.cx(&[(0, 1), (2, 1), (2, 3), (4, 3)]);
/// c.mr(&[1, 3]);
/// c.detector(&[MeasRecord::back(2)]);
/// c.detector(&[MeasRecord::back(1)]);
/// c.m(&[0, 2, 4]);
/// c.observable_include(0, &[MeasRecord::back(3)]);
///
/// let dem = DetectorErrorModel::from_circuit(&c);
/// let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem).unwrap());
/// let mut rng = StdRng::seed_from_u64(2);
/// let stats = mc::logical_error_rate(&c, &decoder, 20_000, &mut rng);
/// // Distance-3 repetition code at p = 0.05: roughly 3 p^2 ≈ 0.007.
/// assert!(stats.logical_error_rate() < 0.03);
/// ```
pub fn logical_error_rate<D: Decoder + Sync, R: Rng>(
    circuit: &Circuit,
    decoder: &D,
    shots: usize,
    rng: &mut R,
) -> DecodeStats {
    let seed = rng.random::<u64>();
    logical_error_rate_seeded(circuit, decoder, shots, seed, &McConfig::default())
        .expect("the default McConfig uses the ambient pool and cannot fail")
}

/// Like [`logical_error_rate`], but stops early once `target_failures`
/// failures have been seen. Thin wrapper over
/// [`logical_error_rate_until_seeded`] with the default [`McConfig`].
pub fn logical_error_rate_until<D: Decoder + Sync, R: Rng>(
    circuit: &Circuit,
    decoder: &D,
    max_shots: usize,
    target_failures: usize,
    rng: &mut R,
) -> DecodeStats {
    let seed = rng.random::<u64>();
    logical_error_rate_until_seeded(
        circuit,
        decoder,
        max_shots,
        target_failures,
        seed,
        &McConfig::default(),
    )
    .expect("the default McConfig uses the ambient pool and cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DecodingGraph;
    use crate::matching::MatchingDecoder;
    use crate::unionfind::UnionFindDecoder;
    use raa_stabsim::{DetectorErrorModel, MeasRecord};

    /// d-distance bit-flip repetition code memory, `rounds` rounds.
    fn repetition(d: usize, rounds: usize, p: f64) -> Circuit {
        let n_data = d;
        let n_anc = d - 1;
        let data: Vec<u32> = (0..n_data as u32).map(|i| 2 * i).collect();
        let anc: Vec<u32> = (0..n_anc as u32).map(|i| 2 * i + 1).collect();
        let mut c = Circuit::new();
        let all: Vec<u32> = (0..(n_data + n_anc) as u32).collect();
        c.r(&all);
        for round in 0..rounds {
            c.x_error(&data, p);
            let pairs: Vec<(u32, u32)> = (0..n_anc)
                .flat_map(|i| [(data[i], anc[i]), (data[i + 1], anc[i])])
                .collect();
            c.cx(&pairs);
            c.mr(&anc);
            for i in 0..n_anc {
                if round == 0 {
                    c.detector(&[MeasRecord::back(n_anc - i)]);
                } else {
                    c.detector(&[MeasRecord::back(n_anc - i), MeasRecord::back(2 * n_anc - i)]);
                }
            }
        }
        c.m(&data);
        for i in 0..n_anc {
            c.detector(&[
                MeasRecord::back(n_data - i),
                MeasRecord::back(n_data - i - 1),
                MeasRecord::back(n_data + n_anc - i),
            ]);
        }
        c.observable_include(0, &[MeasRecord::back(n_data)]);
        c
    }

    fn uf(c: &Circuit) -> UnionFindDecoder {
        let dem = DetectorErrorModel::from_circuit(c);
        UnionFindDecoder::new(DecodingGraph::from_dem(&dem).unwrap())
    }

    fn mwpm(c: &Circuit) -> MatchingDecoder {
        let dem = DetectorErrorModel::from_circuit(c);
        MatchingDecoder::new(DecodingGraph::from_dem(&dem).unwrap())
    }

    #[test]
    fn noiseless_circuit_never_fails() {
        let c = repetition(3, 2, 0.0);
        let stats = logical_error_rate(&c, &uf(&c), 500, &mut StdRng::seed_from_u64(1));
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.shots, 500);
    }

    #[test]
    fn decoding_beats_raw_error_rate() {
        let p = 0.05;
        let c = repetition(3, 3, p);
        let stats = logical_error_rate(&c, &uf(&c), 20_000, &mut StdRng::seed_from_u64(2));
        // Raw single-qubit flip probability over 3 rounds ~ 3p/... just check
        // we're well below p itself.
        assert!(
            stats.logical_error_rate() < p,
            "rate = {}",
            stats.logical_error_rate()
        );
    }

    #[test]
    fn larger_distance_suppresses_errors() {
        let p = 0.03;
        let mut rng = StdRng::seed_from_u64(3);
        let c3 = repetition(3, 3, p);
        let c7 = repetition(7, 3, p);
        let r3 = logical_error_rate(&c3, &uf(&c3), 30_000, &mut rng).logical_error_rate();
        let r7 = logical_error_rate(&c7, &uf(&c7), 30_000, &mut rng).logical_error_rate();
        assert!(r7 < r3, "d=3: {r3}, d=7: {r7}");
    }

    #[test]
    fn matching_at_least_as_good_as_unionfind() {
        let p = 0.08;
        let c = repetition(5, 4, p);
        let mut rng = StdRng::seed_from_u64(4);
        let r_uf = logical_error_rate(&c, &uf(&c), 20_000, &mut rng).logical_error_rate();
        let mut rng = StdRng::seed_from_u64(4);
        let r_m = logical_error_rate(&c, &mwpm(&c), 20_000, &mut rng).logical_error_rate();
        // Exact matching should not be substantially worse.
        assert!(r_m <= r_uf * 1.25 + 0.01, "uf = {r_uf}, mwpm = {r_m}");
    }

    #[test]
    fn early_stop_honours_failure_target() {
        let c = repetition(3, 2, 0.2);
        let stats =
            logical_error_rate_until(&c, &uf(&c), 1_000_000, 10, &mut StdRng::seed_from_u64(5));
        assert!(stats.failures >= 10);
        assert!(stats.shots < 1_000_000);
    }

    #[test]
    fn identical_stats_across_thread_counts() {
        // The acceptance contract of the parallel pipeline: for a fixed
        // seed, DecodeStats are bit-identical for 1 vs N threads.
        let c = repetition(5, 4, 0.05);
        let d = uf(&c);
        let seed = 0xC0FFEE;
        let base =
            logical_error_rate_seeded(&c, &d, 10_000, seed, &McConfig::default().with_threads(1))
                .unwrap();
        for threads in [2usize, 4, 8] {
            let multi = logical_error_rate_seeded(
                &c,
                &d,
                10_000,
                seed,
                &McConfig::default().with_threads(threads),
            )
            .unwrap();
            assert_eq!(base, multi, "threads = {threads}");
        }
        assert_eq!(base.shots, 10_000);
        assert!(base.failures > 0, "p = 5% should produce failures");
    }

    #[test]
    fn identical_early_stop_across_thread_counts() {
        let c = repetition(3, 3, 0.15);
        let d = uf(&c);
        let seed = 0xBADC0DE;
        let base = logical_error_rate_until_seeded(
            &c,
            &d,
            200_000,
            25,
            seed,
            &McConfig::default().with_threads(1),
        )
        .unwrap();
        for threads in [3usize, 7] {
            let multi = logical_error_rate_until_seeded(
                &c,
                &d,
                200_000,
                25,
                seed,
                &McConfig::default().with_threads(threads),
            )
            .unwrap();
            assert_eq!(base, multi, "threads = {threads}");
        }
        assert!(base.failures >= 25);
        assert!(base.shots < 200_000);
    }

    #[test]
    fn zero_failure_target_still_decodes_one_batch() {
        let c = repetition(3, 2, 0.1);
        let d = uf(&c);
        let cfg = McConfig::default().with_threads(4);
        let stats = logical_error_rate_until_seeded(&c, &d, 100_000, 0, 1, &cfg).unwrap();
        assert_eq!(stats.shots, cfg.batch);
    }

    #[test]
    fn batch_size_does_not_change_totals() {
        let c = repetition(3, 2, 0.1);
        let d = uf(&c);
        for batch in [1usize, 7, 64, 1000] {
            let stats = logical_error_rate_seeded(
                &c,
                &d,
                1_000,
                42,
                &McConfig::default().with_batch(batch),
            )
            .unwrap();
            assert_eq!(stats.shots, 1_000, "batch = {batch}");
        }
    }

    #[test]
    fn sequential_policy_matches_single_stream() {
        // Sequential policy must consume one RNG stream exactly like the
        // historical loop, regardless of the requested thread count.
        let c = repetition(3, 3, 0.08);
        let d = uf(&c);
        let cfg_a = McConfig {
            seed_policy: SeedPolicy::Sequential,
            threads: 1,
            ..McConfig::default()
        };
        let cfg_b = McConfig {
            seed_policy: SeedPolicy::Sequential,
            threads: 8,
            ..McConfig::default()
        };
        let a = logical_error_rate_seeded(&c, &d, 5_000, 7, &cfg_a).unwrap();
        let b = logical_error_rate_seeded(&c, &d, 5_000, 7, &cfg_b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn dem_sampler_path_matches_circuit_path_statistically() {
        // The compiled-DEM fast path draws from a different RNG layout than
        // gate-level re-simulation, but the estimated logical error rate
        // must agree within Monte-Carlo tolerance (the repetition circuit
        // uses X errors only, so the DEM distribution is exact).
        let p = 0.05;
        let c = repetition(3, 3, p);
        let d = uf(&c);
        let dem = DetectorErrorModel::from_circuit(&c);
        let dem_sampler = raa_stabsim::DemSampler::new(&dem);
        let shots = 40_000;
        let cfg = McConfig::default();
        let circuit_rate =
            logical_error_rate_sampled(&CircuitSampler::new(&c), &d, shots, 11, &cfg)
                .unwrap()
                .logical_error_rate();
        let dem_rate = logical_error_rate_sampled(&dem_sampler, &d, shots, 11, &cfg)
            .unwrap()
            .logical_error_rate();
        assert!(
            (circuit_rate - dem_rate).abs() < 0.004,
            "circuit {circuit_rate} vs dem {dem_rate}"
        );
    }

    #[test]
    fn dem_sampler_identical_stats_across_thread_counts() {
        let c = repetition(5, 4, 0.05);
        let d = uf(&c);
        let dem = DetectorErrorModel::from_circuit(&c);
        let sampler = raa_stabsim::DemSampler::new(&dem);
        let seed = 0xDE37;
        let base = logical_error_rate_sampled(
            &sampler,
            &d,
            10_000,
            seed,
            &McConfig::default().with_threads(1),
        )
        .unwrap();
        for threads in [2usize, 4, 8] {
            let multi = logical_error_rate_sampled(
                &sampler,
                &d,
                10_000,
                seed,
                &McConfig::default().with_threads(threads),
            )
            .unwrap();
            assert_eq!(base, multi, "threads = {threads}");
        }
        assert!(base.failures > 0, "p = 5% should produce failures");
    }

    #[test]
    fn dem_sampler_early_stop_honours_failure_target() {
        let c = repetition(3, 2, 0.2);
        let dem = DetectorErrorModel::from_circuit(&c);
        let sampler = raa_stabsim::DemSampler::new(&dem);
        let stats = logical_error_rate_until_sampled(
            &sampler,
            &uf(&c),
            1_000_000,
            10,
            5,
            &McConfig::default(),
        )
        .unwrap();
        assert!(stats.failures >= 10);
        assert!(stats.shots < 1_000_000);
    }

    fn windowed(
        c: &Circuit,
        per_layer: usize,
        commit: usize,
        buffer: usize,
    ) -> WindowedDecoder<crate::UniformLayers> {
        let dem = DetectorErrorModel::from_circuit(c);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        WindowedDecoder::new(
            graph,
            crate::UniformLayers {
                detectors_per_layer: per_layer,
            },
            commit,
            buffer,
        )
    }

    #[test]
    fn streamed_stats_match_batch_entry_point_bit_for_bit() {
        // The streaming pipeline and the whole-batch reference entry point
        // (the same StreamingDemSampler through the Sampler trait) must
        // produce identical DecodeStats: same per-layer streams, same
        // window steps, different memory profile only.
        let c = repetition(5, 20, 0.06);
        let dem = DetectorErrorModel::from_circuit(&c);
        let sampler = StreamingDemSampler::new(&dem, 4);
        let decoder = windowed(&c, 4, 2, 3);
        let seed = 0x57AE;
        for batch in [64usize, 256, 1000] {
            let cfg = McConfig::default().with_batch(batch);
            let batch_stats =
                logical_error_rate_sampled(&sampler, &decoder, 3_000, seed, &cfg).unwrap();
            let streamed =
                logical_error_rate_streamed(&sampler, &decoder, 3_000, seed, &cfg).unwrap();
            assert_eq!(batch_stats, streamed, "batch = {batch}");
            assert!(streamed.failures > 0, "p = 6% must fail sometimes");
        }
    }

    #[test]
    fn streamed_identical_stats_across_thread_counts() {
        let c = repetition(3, 30, 0.08);
        let dem = DetectorErrorModel::from_circuit(&c);
        let sampler = StreamingDemSampler::new(&dem, 2);
        let decoder = windowed(&c, 2, 2, 2);
        let seed = 0xF10A;
        let base = logical_error_rate_streamed(
            &sampler,
            &decoder,
            6_000,
            seed,
            &McConfig::default().with_threads(1),
        )
        .unwrap();
        for threads in [2usize, 8] {
            let multi = logical_error_rate_streamed(
                &sampler,
                &decoder,
                6_000,
                seed,
                &McConfig::default().with_threads(threads),
            )
            .unwrap();
            assert_eq!(base, multi, "threads = {threads}");
        }
        assert!(base.failures > 0);
    }

    #[test]
    fn streamed_early_stop_matches_batch_early_stop() {
        let c = repetition(3, 20, 0.1);
        let dem = DetectorErrorModel::from_circuit(&c);
        let sampler = StreamingDemSampler::new(&dem, 2);
        let decoder = windowed(&c, 2, 2, 2);
        let cfg = McConfig::default();
        let batch_stats =
            logical_error_rate_until_sampled(&sampler, &decoder, 500_000, 20, 3, &cfg).unwrap();
        let streamed =
            logical_error_rate_until_streamed(&sampler, &decoder, 500_000, 20, 3, &cfg).unwrap();
        assert_eq!(batch_stats, streamed);
        assert!(streamed.failures >= 20);
        assert!(streamed.shots < 500_000);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn streamed_rejects_mismatched_layering() {
        let c = repetition(3, 20, 0.1);
        let dem = DetectorErrorModel::from_circuit(&c);
        let sampler = StreamingDemSampler::new(&dem, 2);
        // Decoder built over a different circuit: detector counts disagree.
        let c2 = repetition(3, 10, 0.1);
        let decoder = windowed(&c2, 2, 2, 2);
        logical_error_rate_streamed(&sampler, &decoder, 100, 1, &McConfig::default()).unwrap();
    }

    /// The same compiled sampler with fusion declined: forces the
    /// materialize-then-decode reference path on identical RNG streams.
    struct NoFusion<'a>(&'a raa_stabsim::DemSampler);

    impl Sampler for NoFusion<'_> {
        type Scratch = ();

        fn sample_into(
            &self,
            shots: usize,
            rng: &mut StdRng,
            _scratch: &mut (),
            syndromes: &mut SyndromeBatch,
            obs_masks: &mut Vec<u64>,
        ) {
            self.0
                .sample_syndromes_into(shots, rng, syndromes, obs_masks);
        }
    }

    #[test]
    fn fused_dem_decode_matches_whole_batch_bit_for_bit() {
        // The fusion contract: chunking a batch into SAMPLE_BLOCK-shot
        // sample→decode blocks must not change a single sampled bit or
        // decode decision. Batches both below and above the block size are
        // compared against the unfused reference on the same seed.
        let c = repetition(5, 4, 0.05);
        let d = uf(&c);
        let dem = DetectorErrorModel::from_circuit(&c);
        let sampler = raa_stabsim::DemSampler::new(&dem);
        assert_eq!(
            sampler.fusion_block(),
            Some(raa_stabsim::DemSampler::SAMPLE_BLOCK)
        );
        for batch in [256usize, 512, 1000, 4096] {
            let cfg = McConfig::single_threaded().with_batch(batch);
            let fused = logical_error_rate_sampled(&sampler, &d, 8_192, 9, &cfg).unwrap();
            let reference =
                logical_error_rate_sampled(&NoFusion(&sampler), &d, 8_192, 9, &cfg).unwrap();
            assert_eq!(fused, reference, "batch = {batch}");
            assert_eq!(fused.shots, 8_192);
        }
    }

    #[test]
    fn pool_build_error_is_typed_and_printable() {
        let e = McError::PoolBuild {
            requested: 7,
            detail: "nope".into(),
        };
        let text = e.to_string();
        assert!(text.contains("decode thread pool"));
        assert!(text.contains('7'));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn stats_merge_and_errors() {
        let mut a = DecodeStats {
            shots: 100,
            failures: 10,
        };
        a.merge(DecodeStats {
            shots: 100,
            failures: 0,
        });
        assert_eq!(a.shots, 200);
        assert!((a.logical_error_rate() - 0.05).abs() < 1e-12);
        assert!(a.standard_error() > 0.0);
        assert_eq!(DecodeStats::default().logical_error_rate(), 0.0);
    }
}
