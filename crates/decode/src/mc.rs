//! Monte-Carlo logical-error-rate estimation: sample, decode, compare.

use crate::Decoder;
use raa_stabsim::{Circuit, FrameSim};
use rand::Rng;

/// Accumulated decoding statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Number of shots decoded.
    pub shots: usize,
    /// Shots where the predicted observable mask differed from the actual one.
    pub failures: usize,
}

impl DecodeStats {
    /// The logical error rate estimate (failures / shots).
    pub fn logical_error_rate(&self) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.failures as f64 / self.shots as f64
        }
    }

    /// Binomial standard error of the estimate.
    pub fn standard_error(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let p = self.logical_error_rate();
        (p * (1.0 - p) / self.shots as f64).sqrt()
    }

    /// Merges another batch of statistics into this one.
    pub fn merge(&mut self, other: DecodeStats) {
        self.shots += other.shots;
        self.failures += other.failures;
    }
}

/// Batch size used when sampling shots (bounds peak memory).
const BATCH: usize = 4096;

/// Estimates the logical error rate of `circuit` under `decoder`.
///
/// Samples detector data with the Pauli-frame simulator in batches, decodes
/// each shot's syndrome and counts shots where the decoder's predicted
/// observable mask differs from the actual flips.
///
/// # Example
///
/// ```
/// use raa_stabsim::{Circuit, MeasRecord, DetectorErrorModel};
/// use raa_decode::{graph::DecodingGraph, unionfind::UnionFindDecoder, mc};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new();
/// c.r(&[0, 1, 2, 3, 4]);
/// c.x_error(&[0, 2, 4], 0.05);
/// c.cx(&[(0, 1), (2, 1), (2, 3), (4, 3)]);
/// c.mr(&[1, 3]);
/// c.detector(&[MeasRecord::back(2)]);
/// c.detector(&[MeasRecord::back(1)]);
/// c.m(&[0, 2, 4]);
/// c.observable_include(0, &[MeasRecord::back(3)]);
///
/// let dem = DetectorErrorModel::from_circuit(&c);
/// let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem).unwrap());
/// let mut rng = StdRng::seed_from_u64(2);
/// let stats = mc::logical_error_rate(&c, &decoder, 20_000, &mut rng);
/// // Distance-3 repetition code at p = 0.05: roughly 3 p^2 ≈ 0.007.
/// assert!(stats.logical_error_rate() < 0.03);
/// ```
pub fn logical_error_rate<D: Decoder, R: Rng>(
    circuit: &Circuit,
    decoder: &D,
    shots: usize,
    rng: &mut R,
) -> DecodeStats {
    let mut stats = DecodeStats::default();
    let mut remaining = shots;
    while remaining > 0 {
        let batch = remaining.min(BATCH);
        let samples = FrameSim::sample(circuit, batch, rng);
        for s in 0..batch {
            let syndrome = samples.fired_detectors(s);
            let predicted = decoder.predict(&syndrome);
            let actual = samples.observable_mask(s);
            stats.shots += 1;
            if predicted != actual {
                stats.failures += 1;
            }
        }
        remaining -= batch;
    }
    stats
}

/// Like [`logical_error_rate`], but stops early once `target_failures`
/// failures have been seen (useful deep below threshold where failures are
/// rare); always decodes at least one batch.
pub fn logical_error_rate_until<D: Decoder, R: Rng>(
    circuit: &Circuit,
    decoder: &D,
    max_shots: usize,
    target_failures: usize,
    rng: &mut R,
) -> DecodeStats {
    let mut stats = DecodeStats::default();
    while stats.shots < max_shots {
        let batch = (max_shots - stats.shots).min(BATCH);
        let samples = FrameSim::sample(circuit, batch, rng);
        for s in 0..batch {
            let syndrome = samples.fired_detectors(s);
            let predicted = decoder.predict(&syndrome);
            let actual = samples.observable_mask(s);
            stats.shots += 1;
            if predicted != actual {
                stats.failures += 1;
            }
        }
        if stats.failures >= target_failures {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DecodingGraph;
    use crate::matching::MatchingDecoder;
    use crate::unionfind::UnionFindDecoder;
    use raa_stabsim::{DetectorErrorModel, MeasRecord};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// d-distance bit-flip repetition code memory, `rounds` rounds.
    fn repetition(d: usize, rounds: usize, p: f64) -> Circuit {
        let n_data = d;
        let n_anc = d - 1;
        let data: Vec<u32> = (0..n_data as u32).map(|i| 2 * i).collect();
        let anc: Vec<u32> = (0..n_anc as u32).map(|i| 2 * i + 1).collect();
        let mut c = Circuit::new();
        let all: Vec<u32> = (0..(n_data + n_anc) as u32).collect();
        c.r(&all);
        for round in 0..rounds {
            c.x_error(&data, p);
            let pairs: Vec<(u32, u32)> = (0..n_anc)
                .flat_map(|i| [(data[i], anc[i]), (data[i + 1], anc[i])])
                .collect();
            c.cx(&pairs);
            c.mr(&anc);
            for i in 0..n_anc {
                if round == 0 {
                    c.detector(&[MeasRecord::back(n_anc - i)]);
                } else {
                    c.detector(&[
                        MeasRecord::back(n_anc - i),
                        MeasRecord::back(2 * n_anc - i),
                    ]);
                }
            }
        }
        c.m(&data);
        for i in 0..n_anc {
            c.detector(&[
                MeasRecord::back(n_data - i),
                MeasRecord::back(n_data - i - 1),
                MeasRecord::back(n_data + n_anc - i),
            ]);
        }
        c.observable_include(0, &[MeasRecord::back(n_data)]);
        c
    }

    fn uf(c: &Circuit) -> UnionFindDecoder {
        let dem = DetectorErrorModel::from_circuit(c);
        UnionFindDecoder::new(DecodingGraph::from_dem(&dem).unwrap())
    }

    fn mwpm(c: &Circuit) -> MatchingDecoder {
        let dem = DetectorErrorModel::from_circuit(c);
        MatchingDecoder::new(DecodingGraph::from_dem(&dem).unwrap())
    }

    #[test]
    fn noiseless_circuit_never_fails() {
        let c = repetition(3, 2, 0.0);
        let stats = logical_error_rate(&c, &uf(&c), 500, &mut StdRng::seed_from_u64(1));
        assert_eq!(stats.failures, 0);
    }

    #[test]
    fn decoding_beats_raw_error_rate() {
        let p = 0.05;
        let c = repetition(3, 3, p);
        let stats = logical_error_rate(&c, &uf(&c), 20_000, &mut StdRng::seed_from_u64(2));
        // Raw single-qubit flip probability over 3 rounds ~ 3p/... just check
        // we're well below p itself.
        assert!(
            stats.logical_error_rate() < p,
            "rate = {}",
            stats.logical_error_rate()
        );
    }

    #[test]
    fn larger_distance_suppresses_errors() {
        let p = 0.03;
        let mut rng = StdRng::seed_from_u64(3);
        let c3 = repetition(3, 3, p);
        let c7 = repetition(7, 3, p);
        let r3 = logical_error_rate(&c3, &uf(&c3), 30_000, &mut rng).logical_error_rate();
        let r7 = logical_error_rate(&c7, &uf(&c7), 30_000, &mut rng).logical_error_rate();
        assert!(r7 < r3, "d=3: {r3}, d=7: {r7}");
    }

    #[test]
    fn matching_at_least_as_good_as_unionfind() {
        let p = 0.08;
        let c = repetition(5, 4, p);
        let mut rng = StdRng::seed_from_u64(4);
        let r_uf = logical_error_rate(&c, &uf(&c), 20_000, &mut rng).logical_error_rate();
        let mut rng = StdRng::seed_from_u64(4);
        let r_m = logical_error_rate(&c, &mwpm(&c), 20_000, &mut rng).logical_error_rate();
        // Exact matching should not be substantially worse.
        assert!(r_m <= r_uf * 1.25 + 0.01, "uf = {r_uf}, mwpm = {r_m}");
    }

    #[test]
    fn early_stop_honours_failure_target() {
        let c = repetition(3, 2, 0.2);
        let stats = logical_error_rate_until(
            &c,
            &uf(&c),
            1_000_000,
            10,
            &mut StdRng::seed_from_u64(5),
        );
        assert!(stats.failures >= 10);
        assert!(stats.shots < 1_000_000);
    }

    #[test]
    fn stats_merge_and_errors() {
        let mut a = DecodeStats {
            shots: 100,
            failures: 10,
        };
        a.merge(DecodeStats {
            shots: 100,
            failures: 0,
        });
        assert_eq!(a.shots, 200);
        assert!((a.logical_error_rate() - 0.05).abs() < 1e-12);
        assert!(a.standard_error() > 0.0);
        assert_eq!(DecodeStats::default().logical_error_rate(), 0.0);
    }
}
