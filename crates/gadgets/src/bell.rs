//! Bell-pair space–time trade-offs: reaction-limited parallelization
//! (paper §III.5, Fig. 7).
//!
//! A Bell-state preparation plus Bell-basis measurement "bends a qubit
//! backward then forward in time", letting sequentially-dependent circuit
//! blocks execute in parallel; the dependent measurements resolve one by one
//! at reaction-time intervals. A block of physical duration `t_block` can
//! therefore run `⌈t_block / t_r⌉` copies deep in a pipeline, at the price of
//! holding that many copies (plus bridge qubits) in space.

/// Number of parallel block copies needed so the computation is limited only
/// by the reaction time (Fig. 7: "execute t_block/t_r copies in parallel").
///
/// # Panics
///
/// Panics unless both durations are positive and finite.
///
/// # Example
///
/// ```
/// use raa_gadgets::bell::parallel_copies;
///
/// // A 5 ms MAJ block at a 1 ms reaction time: 5 copies in flight.
/// assert_eq!(parallel_copies(5e-3, 1e-3), 5);
/// ```
pub fn parallel_copies(t_block: f64, t_reaction: f64) -> u64 {
    assert!(
        t_block.is_finite() && t_block > 0.0,
        "block duration must be positive, got {t_block}"
    );
    assert!(
        t_reaction.is_finite() && t_reaction > 0.0,
        "reaction time must be positive, got {t_reaction}"
    );
    (t_block / t_reaction).ceil().max(1.0) as u64
}

/// Effective duration per block when pipelined: the reaction time, unless the
/// block itself is faster.
pub fn pipelined_block_interval(t_block: f64, t_reaction: f64) -> f64 {
    assert!(t_block > 0.0 && t_reaction > 0.0);
    t_reaction.min(t_block)
}

/// Space overhead (in patches) of running `copies` of a block of
/// `patches_per_block` patches, including one bridge-qubit pair per copy.
pub fn pipeline_patches(copies: u64, patches_per_block: u64) -> u64 {
    copies * (patches_per_block + 2)
}

/// Logical-error contribution of the Bell bridge per block: the Bell pair is
/// created, idles for one block duration, and is measured — two extra logical
/// qubits for `rounds` SE rounds at per-qubit-round error `p_round`.
pub fn bridge_error(rounds: f64, p_round: f64) -> f64 {
    assert!(rounds >= 0.0 && p_round >= 0.0);
    (2.0 * rounds * p_round).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn copies_round_up() {
        assert_eq!(parallel_copies(5e-3, 1e-3), 5);
        assert_eq!(parallel_copies(5.1e-3, 1e-3), 6);
        assert_eq!(parallel_copies(0.5e-3, 1e-3), 1);
    }

    #[test]
    fn pipelined_interval_is_reaction_limited() {
        assert_eq!(pipelined_block_interval(5e-3, 1e-3), 1e-3);
        assert_eq!(pipelined_block_interval(0.5e-3, 1e-3), 0.5e-3);
    }

    #[test]
    fn pipeline_space_accounting() {
        assert_eq!(pipeline_patches(5, 6), 40);
        assert_eq!(pipeline_patches(1, 0), 2);
    }

    #[test]
    fn bridge_error_scales_and_saturates() {
        assert!((bridge_error(10.0, 1e-6) - 2e-5).abs() < 1e-12);
        assert_eq!(bridge_error(1e9, 1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_reaction() {
        let _ = parallel_copies(1e-3, 0.0);
    }

    proptest! {
        /// Copies × reaction always covers the block duration.
        #[test]
        fn copies_cover_block(t_block in 1e-5f64..1.0, t_r in 1e-5f64..1.0) {
            let c = parallel_copies(t_block, t_r);
            prop_assert!(c as f64 * t_r >= t_block - 1e-12);
            // And never overshoot by more than one reaction time.
            prop_assert!((c as f64 - 1.0) * t_r <= t_block + 1e-12);
        }
    }
}
