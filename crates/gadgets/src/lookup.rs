//! Quantum look-up tables (QROM) with GHZ-assisted CNOT fan-out
//! (paper §III.8, Fig. 10).
//!
//! A look-up table with `w` address bits loads one of `2^w` classically
//! pre-computed values into an `m`-bit output register. The circuit loops
//! through address values with temporary-AND Toffolis (one per entry) and
//! fans each selected row into the target register. The fan-out is done with
//! measurement-based GHZ states snaked through the register (Fig. 10b,c), so
//! every move is a short constant hop of ≈ 2·d·l rather than a log-depth
//! long-range tree — that keeps the per-entry time near the reaction limit:
//!
//! ```text
//! t_entry = max(t_r, t_fanout_stage),   t_fanout_stage ≈ 2 · t_move(2d·l)
//! ```
//!
//! which at Table I parameters gives ≈ 1.3 ms per entry and the paper's
//! 0.17 s per (w = 7)-window lookup.

use raa_core::{idle, logical, ArchContext, Gadget, GadgetCost};
use raa_physics::motion;
use std::fmt;

/// GHZ helper patches per target patch (one GHZ qubit plus a shared prep
/// ancilla between neighbours, Fig. 10c).
pub const GHZ_OVERHEAD_PER_TARGET: f64 = 1.5;

/// A QROM look-up gadget.
///
/// # Example
///
/// ```
/// use raa_gadgets::lookup::LookupTable;
/// use raa_core::{ArchContext, Gadget};
///
/// // The paper's windowed lookup: w_exp + w_mul = 7 address bits feeding a
/// // 2048-bit (padded) register.
/// let lookup = LookupTable::new(7, 2994);
/// let cost = lookup.cost(&ArchContext::paper());
/// assert!((cost.seconds - 0.17).abs() < 0.03); // the paper's 0.17 s
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookupTable {
    address_bits: u32,
    output_bits: u32,
    /// GHZ grid spacing in patch pitches (optimized over in the paper; the
    /// default 2 keeps moves at 2·d·l as in Fig. 10c).
    ghz_spacing: f64,
    /// Pipeline copies per GHZ stage (the paper finds 1 optimal).
    pipeline_copies: u32,
}

impl LookupTable {
    /// Creates a lookup over `address_bits` (table of `2^address_bits`
    /// entries) into an `output_bits`-wide register, with default layout.
    ///
    /// # Panics
    ///
    /// Panics if `address_bits` is 0 or exceeds 30, or `output_bits` is 0.
    pub fn new(address_bits: u32, output_bits: u32) -> Self {
        assert!(
            (1..=30).contains(&address_bits),
            "address bits must be in 1..=30, got {address_bits}"
        );
        assert!(output_bits >= 1, "output register must be at least 1 bit");
        Self {
            address_bits,
            output_bits,
            ghz_spacing: 2.0,
            pipeline_copies: 1,
        }
    }

    /// Sets the GHZ grid spacing in patch pitches.
    ///
    /// # Panics
    ///
    /// Panics unless the spacing is in [0.5, 16].
    pub fn with_ghz_spacing(mut self, spacing: f64) -> Self {
        assert!(
            (0.5..=16.0).contains(&spacing),
            "GHZ spacing must be in [0.5, 16], got {spacing}"
        );
        self.ghz_spacing = spacing;
        self
    }

    /// Sets the number of pipeline copies per GHZ stage.
    ///
    /// # Panics
    ///
    /// Panics if `copies` is zero.
    pub fn with_pipeline_copies(mut self, copies: u32) -> Self {
        assert!(copies >= 1, "need at least one pipeline copy");
        self.pipeline_copies = copies;
        self
    }

    /// Address width in bits.
    pub fn address_bits(&self) -> u32 {
        self.address_bits
    }

    /// Output register width in bits.
    pub fn output_bits(&self) -> u32 {
        self.output_bits
    }

    /// Number of table entries, `2^w`.
    pub fn entries(&self) -> u64 {
        1u64 << self.address_bits
    }

    /// Toffoli count of the unary-iteration scan: `2^w − 1` temporary ANDs.
    pub fn toffoli_count(&self) -> u64 {
        self.entries() - 1
    }

    /// Toffoli count of the measurement-based unlookup (uncomputation):
    /// `O(2^(w/2))` via the square-root trick of windowed arithmetic [65].
    pub fn unlookup_toffoli_count(&self) -> u64 {
        1u64 << self.address_bits.div_ceil(2)
    }

    /// Duration of one GHZ fan-out stage: two constant hops of
    /// `ghz_spacing · d` sites (GHZ qubits into place, next stage's prep
    /// moving behind it) — measurements pipeline with the moves.
    pub fn fanout_stage_time(&self, ctx: &ArchContext) -> f64 {
        let hop =
            motion::move_time_sites(&ctx.physical, self.ghz_spacing * f64::from(ctx.distance));
        2.0 * hop / f64::from(self.pipeline_copies) + ctx.physical.gate_time
    }

    /// Effective time per table entry: reaction-limited Toffoli scan
    /// overlapped with the fan-out pipeline.
    pub fn entry_time(&self, ctx: &ArchContext) -> f64 {
        ctx.reaction_time().max(self.fanout_stage_time(ctx))
    }

    /// Wall-clock duration of one lookup: the `2^w`-entry scan at the
    /// per-entry rate. The measurement-based unlookup involves no fan-out and
    /// overlaps with the subsequent addition, so it costs |CCZ⟩ states
    /// ([`LookupTable::unlookup_toffoli_count`]) but no extra wall-clock time.
    pub fn duration(&self, ctx: &ArchContext) -> f64 {
        self.entries() as f64 * self.entry_time(ctx)
    }

    /// Logical patches of the GHZ fan-out layer: an underlying grid of one
    /// GHZ qubit plus half a prep ancilla per `ghz_spacing` target patches
    /// (Fig. 10c), per pipeline copy.
    pub fn ghz_patches(&self) -> f64 {
        f64::from(self.output_bits) * GHZ_OVERHEAD_PER_TARGET / self.ghz_spacing
            * f64::from(self.pipeline_copies)
    }

    /// Physical qubits: address + output registers plus the GHZ fan-out layer.
    pub fn qubits(&self, ctx: &ArchContext) -> f64 {
        let per_patch = ctx.atoms_per_patch();
        let registers = f64::from(self.address_bits) + f64::from(self.output_bits);
        (registers + self.ghz_patches() + 2.0) * per_patch
    }

    /// |CCZ⟩ states consumed (lookup plus unlookup Toffolis).
    pub fn ccz_count(&self) -> u64 {
        self.toffoli_count() + self.unlookup_toffoli_count()
    }

    /// Logical error of one lookup: scan-gate errors, the GHZ fan-out volume
    /// (the dominant term, Fig. 12b) and register idling.
    pub fn logical_error(&self, ctx: &ArchContext) -> f64 {
        let per_cnot = logical::cnot_error(&ctx.error, ctx.distance, ctx.cnots_per_round);
        let scan = (self.toffoli_count() * 8) as f64 * per_cnot;
        // Each entry's fan-out exposes a GHZ chain of ~m logical qubits for
        // ~2 SE rounds (prep + transversal CX + measure).
        let per_round =
            logical::error_per_qubit_round(&ctx.error, ctx.distance, ctx.cnots_per_round);
        let fanout = self.entries() as f64 * f64::from(self.output_bits) * 2.0 * per_round;
        let t_coh = ctx.physical.coherence_time;
        let dt = idle::optimal_idle_period(&ctx.error, ctx.distance, t_coh);
        let idle_rate = idle::idle_error_per_second(&ctx.error, ctx.distance, dt, t_coh);
        let idle_err =
            f64::from(self.output_bits + self.address_bits) * self.duration(ctx) * idle_rate;
        (scan + fanout + idle_err).min(1.0)
    }

    /// The fan-out share of the lookup's logical error (for Fig. 12b).
    pub fn fanout_error_share(&self, ctx: &ArchContext) -> f64 {
        let per_round =
            logical::error_per_qubit_round(&ctx.error, ctx.distance, ctx.cnots_per_round);
        let fanout = self.entries() as f64 * f64::from(self.output_bits) * 2.0 * per_round;
        fanout / self.logical_error(ctx).max(f64::MIN_POSITIVE)
    }
}

impl Gadget for LookupTable {
    fn name(&self) -> &str {
        "lookup-table"
    }

    fn cost(&self, ctx: &ArchContext) -> GadgetCost {
        GadgetCost {
            qubits: self.qubits(ctx),
            seconds: self.duration(ctx),
            logical_error: self.logical_error(ctx),
            ccz_states: self.ccz_count() as f64,
        }
    }
}

impl fmt::Display for LookupTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lookup table: {} address bits ({} entries) -> {} bits",
            self.address_bits,
            self.entries(),
            self.output_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ctx() -> ArchContext {
        ArchContext::paper()
    }

    #[test]
    fn paper_lookup_takes_0p17_s() {
        // §IV.2: "each lookup takes 0.17 seconds" at w = 3 + 4 = 7.
        let lookup = LookupTable::new(7, 2994);
        let t = lookup.duration(&ctx());
        assert!((t - 0.17).abs() < 0.03, "t = {t}");
    }

    #[test]
    fn entry_time_is_fanout_limited_at_paper_params() {
        // 2·move(2d·l) ≈ 1.37 ms > 1 ms reaction: the fan-out move dominates,
        // which is why Fig. 14(c) shows a floor when the reaction time drops.
        let lookup = LookupTable::new(7, 2048);
        let stage = lookup.fanout_stage_time(&ctx());
        assert!(stage > ctx().reaction_time(), "stage = {stage}");
        assert!((stage - 1.37e-3).abs() < 0.1e-3, "stage = {stage}");
    }

    #[test]
    fn toffoli_counts() {
        let lookup = LookupTable::new(7, 64);
        assert_eq!(lookup.entries(), 128);
        assert_eq!(lookup.toffoli_count(), 127);
        assert_eq!(lookup.unlookup_toffoli_count(), 16);
        assert_eq!(lookup.ccz_count(), 143);
    }

    #[test]
    fn fanout_dominates_error_budget() {
        // Fig. 12(b): during lookup the CNOT fan-out dominates the error.
        let lookup = LookupTable::new(7, 2994);
        let share = lookup.fanout_error_share(&ctx());
        assert!(share > 0.5, "fan-out share = {share}");
    }

    #[test]
    fn wider_pipeline_shortens_stage() {
        let base = LookupTable::new(7, 512);
        let piped = base.with_pipeline_copies(2);
        assert!(piped.fanout_stage_time(&ctx()) < base.fanout_stage_time(&ctx()));
        assert!(piped.qubits(&ctx()) > base.qubits(&ctx()));
    }

    #[test]
    fn spacing_tradeoff() {
        let tight = LookupTable::new(7, 512).with_ghz_spacing(1.0);
        let loose = LookupTable::new(7, 512).with_ghz_spacing(4.0);
        // Tighter grid: more GHZ qubits, shorter moves.
        assert!(tight.qubits(&ctx()) > loose.qubits(&ctx()));
        assert!(tight.fanout_stage_time(&ctx()) < loose.fanout_stage_time(&ctx()));
    }

    #[test]
    fn gadget_interface() {
        let lookup = LookupTable::new(5, 128);
        let c = lookup.cost(&ctx());
        assert_eq!(c.ccz_states, lookup.ccz_count() as f64);
        assert!(c.logical_error > 0.0 && c.logical_error < 1e-3);
        assert_eq!(lookup.name(), "lookup-table");
    }

    #[test]
    #[should_panic(expected = "address bits")]
    fn rejects_oversized_table() {
        let _ = LookupTable::new(31, 8);
    }

    proptest! {
        /// Entries double per address bit.
        #[test]
        fn entries_exponential(w in 1u32..20) {
            let a = LookupTable::new(w, 8);
            let b = LookupTable::new(w + 1, 8);
            prop_assert_eq!(b.entries(), 2 * a.entries());
        }

        /// Duration grows with address width; qubits with output width.
        #[test]
        fn cost_monotonicity(w in 2u32..12, m in 8u32..4096) {
            let small = LookupTable::new(w, m);
            let wide = LookupTable::new(w + 1, m);
            prop_assert!(wide.duration(&ctx()) > small.duration(&ctx()));
            let tall = LookupTable::new(w, m + 64);
            prop_assert!(tall.qubits(&ctx()) > small.qubits(&ctx()));
        }
    }
}
