//! CNOT fan-out alternatives: the GHZ-assisted constant-depth fan-out the
//! paper adopts versus the naive log-depth CNOT tree it rejects (§III.8:
//! "a naive implementation might use a log-depth circuit to achieve the
//! required fan-out, necessitating long moves").
//!
//! Both models answer the same question — fan one control qubit into `m`
//! targets laid out as a row of patches — so the ablation binary can show
//! why the measurement-based GHZ route wins on an atom array: tree levels
//! double the move distance each layer (√-law or not, long moves dominate),
//! while the GHZ route is a fixed number of short hops plus measurements.

use raa_core::{logical, ArchContext};
use raa_physics::motion;

/// Cost summary of one fan-out of a control into `m` targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FanoutCost {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Extra logical patches held during the fan-out.
    pub extra_patches: f64,
    /// Logical error probability.
    pub logical_error: f64,
}

/// The paper's measurement-based GHZ fan-out (Fig. 10b,c): prepare a GHZ
/// chain with two CX layers and helper measurements, transversal CX into the
/// targets, X-measure the chain. All moves are `spacing·d` hops.
pub fn ghz_fanout(ctx: &ArchContext, m: u32, spacing: f64) -> FanoutCost {
    assert!(m >= 1, "need at least one target");
    assert!(spacing > 0.0, "spacing must be positive");
    let cycle = ctx.cycle();
    let hop = motion::move_time_sites(&ctx.physical, spacing * f64::from(ctx.distance));
    // Two CX layers for GHZ prep + one transversal CX to targets, each with
    // a short hop and an SE round; helper and chain measurements pipeline.
    let seconds =
        3.0 * (hop + cycle.transversal_step(1.0 / ctx.cnots_per_round)) + ctx.physical.measure_time;
    let ghz_patches = f64::from(m) * 1.5 / spacing;
    let per_round = logical::error_per_qubit_round(&ctx.error, ctx.distance, ctx.cnots_per_round);
    let logical_error = (ghz_patches + f64::from(m)) * 3.0 * per_round;
    FanoutCost {
        seconds,
        extra_patches: ghz_patches,
        logical_error: logical_error.min(1.0),
    }
}

/// The naive log-depth CNOT tree: level ℓ copies the control across a span
/// that doubles each level, so the final level moves across `m/2` patch
/// pitches — exactly the long-range moves the paper's layouts avoid.
pub fn tree_fanout(ctx: &ArchContext, m: u32) -> FanoutCost {
    assert!(m >= 1, "need at least one target");
    let cycle = ctx.cycle();
    let levels = (f64::from(m)).log2().ceil().max(1.0) as u32;
    let mut seconds = 0.0;
    for level in 0..levels {
        // Span in patch pitches at this level.
        let span = f64::from(1u32 << level.min(30)) / 2.0;
        let hop = motion::move_time_sites(
            &ctx.physical,
            (span * f64::from(ctx.distance)).max(f64::from(ctx.distance)),
        );
        seconds += hop + cycle.transversal_step(1.0 / ctx.cnots_per_round);
    }
    let per_cnot = logical::cnot_error(&ctx.error, ctx.distance, ctx.cnots_per_round);
    // m − 1 logical CNOTs in the tree; no extra ancilla patches, but every
    // target idles for the whole depth.
    let per_round = logical::error_per_qubit_round(&ctx.error, ctx.distance, ctx.cnots_per_round);
    let idle_rounds = f64::from(levels);
    let logical_error =
        (f64::from(m - 1) * per_cnot + f64::from(m) * idle_rounds * per_round).min(1.0);
    FanoutCost {
        seconds,
        extra_patches: 0.0,
        logical_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ctx() -> ArchContext {
        ArchContext::paper()
    }

    #[test]
    fn ghz_fanout_is_constant_time_in_m() {
        let small = ghz_fanout(&ctx(), 64, 2.0);
        let large = ghz_fanout(&ctx(), 4096, 2.0);
        assert!((small.seconds - large.seconds).abs() < 1e-12);
        assert!(large.extra_patches > small.extra_patches);
    }

    #[test]
    fn tree_fanout_grows_with_m() {
        let small = tree_fanout(&ctx(), 64);
        let large = tree_fanout(&ctx(), 4096);
        assert!(large.seconds > small.seconds);
    }

    #[test]
    fn ghz_beats_tree_at_register_scale() {
        // The paper's design point: ~3000-bit registers. The GHZ route must
        // be decisively faster than the log-depth tree.
        let m = 2994;
        let ghz = ghz_fanout(&ctx(), m, 2.0);
        let tree = tree_fanout(&ctx(), m);
        assert!(
            tree.seconds > 2.0 * ghz.seconds,
            "tree {} vs ghz {}",
            tree.seconds,
            ghz.seconds
        );
    }

    #[test]
    fn ghz_time_is_milliseconds() {
        let g = ghz_fanout(&ctx(), 2994, 2.0);
        assert!((2e-3..10e-3).contains(&g.seconds), "t = {}", g.seconds);
    }

    proptest! {
        /// Both models report monotone error in m.
        #[test]
        fn errors_monotone(m in 2u32..4000) {
            let c = ctx();
            prop_assert!(
                ghz_fanout(&c, m + 1, 2.0).logical_error >= ghz_fanout(&c, m, 2.0).logical_error
            );
            prop_assert!(
                tree_fanout(&c, m + 1).logical_error >= tree_fanout(&c, m).logical_error - 1e-18
            );
        }
    }
}
