//! Transversal implementations of the paper's algorithmic subroutines
//! (§III.5–III.8): the building blocks composed by the end-to-end estimator.
//!
//! * [`bell`] — Bell-pair space–time trade-offs: reaction-limited pipelining
//!   of sequentially-dependent blocks (Fig. 7);
//! * [`adder`] — the Cuccaro ripple-carry adder with oblivious carry runways,
//!   MAJ/UMA blocks in a 3×2-patch layout (Fig. 9);
//! * [`lookup`] — QROM look-up tables with measurement-based GHZ CNOT
//!   fan-out and snaked constant-distance moves (Fig. 10);
//! * [`windowed`] — the windowed lookup-addition combining both, the unit
//!   step of modular exponentiation (Fig. 5).
//!
//! # Example: the paper's per-operation times
//!
//! ```
//! use raa_core::ArchContext;
//! use raa_gadgets::{adder::CuccaroAdder, lookup::LookupTable};
//!
//! let ctx = ArchContext::paper();
//! let addition = CuccaroAdder::new(2048, 96, 43).duration(&ctx);
//! let lookup = LookupTable::new(7, 2994).duration(&ctx);
//! assert!((addition - 0.28).abs() < 0.01); // §IV.2: 0.28 s
//! assert!((lookup - 0.17).abs() < 0.03);   // §IV.2: 0.17 s
//! ```

#![forbid(unsafe_code)]

pub mod adder;
pub mod bell;
pub mod circuits;
pub mod fanout;
pub mod lookup;
pub mod windowed;

pub use adder::CuccaroAdder;
pub use circuits::GadgetKind;
pub use lookup::LookupTable;
pub use windowed::LookupAddition;
