//! Circuit-level Clifford skeletons of the arithmetic gadgets, for the
//! `raa-sim` Monte-Carlo pipeline.
//!
//! The gadgets' non-Clifford content (Toffolis, phase kickback) cannot be
//! stabilizer-sampled, but their syndrome structure is fixed by the
//! transversal-CNOT frame that moves data through the gadget. Each
//! [`GadgetKind`] exposes that frame as a cycled CNOT layer schedule — one
//! layer per SE round, matching the paper's operating point — which
//! [`raa_surface::ScheduledCnotExperiment`] turns into a decodable circuit
//! with uniform detector layering, so arbitrary gadget depths stream through
//! the windowed decoder (PR 4's deep-CNOT path).

use raa_surface::{Basis, NoiseModel, ScheduledCnotExperiment};

/// Which gadget's Clifford skeleton to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GadgetKind {
    /// Cuccaro ripple-carry adder (paper Fig. 9): MAJ layers ripple the
    /// carry up through `width` bit positions, UMA layers ripple it back.
    Adder,
    /// QROM lookup's CNOT fan-out tree (paper Fig. 10): a doubling tree
    /// copies the address register out, then uncomputes it in reverse.
    Lookup,
    /// GHZ-style single-source fan-out: one control patch targets each of
    /// the other patches in turn.
    Fanout,
}

impl GadgetKind {
    /// All kinds, in catalog order.
    pub const ALL: [GadgetKind; 3] = [GadgetKind::Adder, GadgetKind::Lookup, GadgetKind::Fanout];

    /// Stable lowercase label used in records and on the wire.
    pub fn label(self) -> &'static str {
        match self {
            GadgetKind::Adder => "adder",
            GadgetKind::Lookup => "lookup",
            GadgetKind::Fanout => "fanout",
        }
    }

    /// Number of surface-code patches a width-`width` instance occupies.
    ///
    /// The adder holds two `width`-bit registers plus the carry patch; the
    /// lookup tree and the fan-out act on `width` patches directly.
    pub fn patches(self, width: usize) -> usize {
        match self {
            GadgetKind::Adder => 2 * width + 1,
            GadgetKind::Lookup | GadgetKind::Fanout => width,
        }
    }

    /// The cycled transversal-CNOT layer schedule (0-based patch pairs).
    ///
    /// # Panics
    ///
    /// Panics if `width` is below the gadget's minimum (1 for the adder,
    /// 2 for lookup and fan-out).
    pub fn schedule(self, width: usize) -> Vec<Vec<(usize, usize)>> {
        match self {
            GadgetKind::Adder => {
                assert!(width >= 1, "adder needs at least one bit position");
                // Patch layout: carry = 0, a_i = 1 + i, b_i = 1 + width + i.
                // MAJ layer i sources the running carry (the carry patch for
                // i = 0, then a_{i-1}) into both registers at position i.
                let maj: Vec<Vec<(usize, usize)>> = (0..width)
                    .map(|i| {
                        let carry_src = if i == 0 { 0 } else { i };
                        vec![(carry_src, 1 + width + i), (carry_src, 1 + i)]
                    })
                    .collect();
                let mut layers = maj.clone();
                layers.extend(maj.into_iter().rev());
                layers
            }
            GadgetKind::Lookup => {
                assert!(width >= 2, "lookup tree needs at least two patches");
                let mut tree: Vec<Vec<(usize, usize)>> = Vec::new();
                let mut span = 1;
                while span < width {
                    tree.push(
                        (0..span)
                            .filter(|&i| i + span < width)
                            .map(|i| (i, i + span))
                            .collect(),
                    );
                    span *= 2;
                }
                let mut layers = tree.clone();
                layers.extend(tree.into_iter().rev());
                layers
            }
            GadgetKind::Fanout => {
                assert!(width >= 2, "fan-out needs at least two patches");
                (1..width).map(|j| vec![(0, j)]).collect()
            }
        }
    }

    /// The decodable circuit-level experiment for this gadget.
    ///
    /// # Example
    ///
    /// ```
    /// use raa_gadgets::circuits::GadgetKind;
    /// use raa_surface::NoiseModel;
    ///
    /// let exp = GadgetKind::Adder.experiment(3, 4, 4, NoiseModel::uniform(1e-3));
    /// assert_eq!(exp.build().num_detectors(), 4 * 9 * 8);
    /// ```
    pub fn experiment(
        self,
        distance: u32,
        width: usize,
        rounds: usize,
        noise: NoiseModel,
    ) -> ScheduledCnotExperiment {
        ScheduledCnotExperiment {
            distance,
            patches: self.patches(width),
            schedule: self.schedule(width),
            rounds,
            basis: Basis::Z,
            noise,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_schedule_ripples_and_unripples() {
        let layers = GadgetKind::Adder.schedule(4);
        assert_eq!(layers.len(), 8, "width MAJ layers + width UMA layers");
        assert_eq!(layers[0], vec![(0, 5), (0, 1)]);
        assert_eq!(layers[3], vec![(3, 8), (3, 4)]);
        // UMA half is the MAJ half mirrored.
        for i in 0..4 {
            assert_eq!(layers[4 + i], layers[3 - i]);
        }
    }

    #[test]
    fn lookup_schedule_is_a_doubling_tree() {
        let layers = GadgetKind::Lookup.schedule(4);
        assert_eq!(
            layers,
            vec![
                vec![(0, 1)],
                vec![(0, 2), (1, 3)],
                vec![(0, 2), (1, 3)],
                vec![(0, 1)],
            ]
        );
        // Non-power-of-two widths drop the out-of-range branches.
        let w5 = GadgetKind::Lookup.schedule(5);
        assert_eq!(w5[2], vec![(0, 4)]);
    }

    #[test]
    fn fanout_schedule_targets_every_patch_once() {
        let layers = GadgetKind::Fanout.schedule(3);
        assert_eq!(layers, vec![vec![(0, 1)], vec![(0, 2)]]);
    }

    #[test]
    fn schedules_stay_in_range() {
        for kind in GadgetKind::ALL {
            for width in 2..=5 {
                let patches = kind.patches(width);
                for layer in kind.schedule(width) {
                    for (c, t) in layer {
                        assert!(
                            c < patches && t < patches && c != t,
                            "{kind:?} w={width}: ({c}, {t})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn experiments_layer_uniformly() {
        for kind in GadgetKind::ALL {
            let exp = kind.experiment(3, 3, 3, NoiseModel::uniform(1e-3));
            let c = exp.build();
            assert_eq!(
                c.num_detectors(),
                3 * kind.patches(3) * 8,
                "{kind:?}: rounds × patches × (d² − 1)"
            );
            assert_eq!(c.num_observables(), kind.patches(3));
        }
    }
}
