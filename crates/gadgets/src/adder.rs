//! The Cuccaro ripple-carry adder with oblivious carry runways
//! (paper §III.7, Fig. 9).
//!
//! The adder computes |a⟩|b⟩ → |a⟩|a+b⟩ from MAJ and UMA blocks, one Toffoli
//! each, implemented with auto-corrected |CCZ⟩ states so execution is limited
//! only by the reaction time (§III.5). The linear carry chain is cut into
//! segments by oblivious carry runways [66]: `r_sep`-bit segments padded with
//! `r_pad` runway bits run *in parallel*, so the wall-clock duration is
//!
//! ```text
//! t_add = 2 · (r_sep + r_pad) · t_r
//! ```
//!
//! — the paper's 0.28 s for its Table II choice (96 + 43 bits, 1 ms reaction).
//! Each MAJ/UMA block fits a 3×2-patch region with moves of at most √2·d·l
//! (Fig. 9c), and Bell bridges keep `⌈t_block/t_r⌉` blocks in flight per
//! segment.

use crate::bell;
use raa_core::{idle, logical, ArchContext, Gadget, GadgetCost};
use raa_physics::motion;
use std::fmt;

/// Patches of one MAJ/UMA working block (Fig. 9c: a 3 × 2 logical region).
pub const BLOCK_PATCHES: u64 = 6;

/// Two-qubit-gate count charged per bit position: the MAJ block's CCZ
/// teleportation CNOTs and auto-corrected CZs (Fig. 9b) plus the cheaper
/// measurement-based UMA uncomputation.
pub const GATES_PER_BLOCK: u64 = 12;

/// A Cuccaro ripple-carry adder over `n_bits`-bit registers with runways.
///
/// # Example
///
/// ```
/// use raa_gadgets::adder::CuccaroAdder;
/// use raa_core::{ArchContext, Gadget};
///
/// // The paper's Table II addition: 2048 bits, r_sep = 96, r_pad = 43.
/// let adder = CuccaroAdder::new(2048, 96, 43);
/// let cost = adder.cost(&ArchContext::paper());
/// assert!((cost.seconds - 0.278).abs() < 0.01); // the paper's 0.28 s
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CuccaroAdder {
    n_bits: u32,
    runway_separation: u32,
    runway_padding: u32,
}

impl CuccaroAdder {
    /// Creates an adder over `n_bits` with runway separation `r_sep` and
    /// padding `r_pad` (Table II: 96 and 43 for 2048-bit factoring).
    ///
    /// # Panics
    ///
    /// Panics if `n_bits` or `r_sep` is zero.
    pub fn new(n_bits: u32, runway_separation: u32, runway_padding: u32) -> Self {
        assert!(n_bits >= 1, "adder width must be at least 1 bit");
        assert!(runway_separation >= 1, "runway separation must be positive");
        Self {
            n_bits,
            runway_separation,
            runway_padding,
        }
    }

    /// An adder without runways (single segment).
    pub fn without_runways(n_bits: u32) -> Self {
        Self::new(n_bits, n_bits, 0)
    }

    /// Register width in bits.
    pub fn n_bits(&self) -> u32 {
        self.n_bits
    }

    /// Number of parallel runway segments.
    pub fn segments(&self) -> u32 {
        self.n_bits.div_ceil(self.runway_separation)
    }

    /// Total bits processed including runway padding.
    pub fn padded_bits(&self) -> u64 {
        u64::from(self.n_bits) + u64::from(self.segments()) * u64::from(self.runway_padding)
    }

    /// Toffoli (=|CCZ⟩) count: one temporary-AND per bit. The MAJ block
    /// consumes one |CCZ⟩; the UMA block uncomputes its AND ancilla by
    /// measurement with Clifford feed-forward (Gidney's halving trick [21]),
    /// which costs a reaction step but no magic state.
    pub fn toffoli_count(&self) -> u64 {
        self.padded_bits()
    }

    /// CNOT count of the bare Cuccaro circuit (≈ 5 per bit).
    pub fn cnot_count(&self) -> u64 {
        5 * self.padded_bits()
    }

    /// Sequential depth in reaction-time steps: `2 (r_sep + r_pad)`.
    pub fn reaction_depth(&self) -> u64 {
        2 * u64::from(self.runway_separation + self.runway_padding)
    }

    /// Wall-clock duration of one addition (reaction-limited, Fig. 7).
    pub fn duration(&self, ctx: &ArchContext) -> f64 {
        self.reaction_depth() as f64 * ctx.reaction_time()
    }

    /// Duration of one MAJ/UMA block's physical execution (four transversal
    /// steps within the 3×2 region, the longest move being √2·d·l, plus the
    /// block measurement): sets how many blocks a segment keeps in flight.
    pub fn block_time(&self, ctx: &ArchContext) -> f64 {
        let cycle = ctx.cycle();
        let diag_move = motion::move_time_sites(
            &ctx.physical,
            std::f64::consts::SQRT_2 * f64::from(ctx.distance),
        );
        4.0 * (cycle.transversal_step(1.0 / ctx.cnots_per_round) + diag_move)
            + ctx.physical.measure_time
    }

    /// |CCZ⟩ demand rate while the adder runs, per second: each segment
    /// resolves one MAJ (consuming a |CCZ⟩) every two reaction steps (the UMA
    /// uncomputation step consumes none).
    pub fn ccz_rate(&self, ctx: &ArchContext) -> f64 {
        f64::from(self.segments()) / (2.0 * ctx.reaction_time())
    }

    /// Logical patches of the in-flight MAJ/UMA pipeline across all segments
    /// (Bell-bridged copies of the 3×2 working blocks).
    pub fn pipeline_patches(&self, ctx: &ArchContext) -> f64 {
        let copies = bell::parallel_copies(self.block_time(ctx), ctx.reaction_time());
        f64::from(self.segments()) * bell::pipeline_patches(copies, BLOCK_PATCHES) as f64
    }

    /// Physical qubits: the two `padded_bits`-wide registers plus the
    /// in-flight MAJ/UMA pipeline of every segment.
    pub fn qubits(&self, ctx: &ArchContext) -> f64 {
        let per_patch = ctx.atoms_per_patch();
        let registers = 2.0 * self.padded_bits() as f64;
        (registers + self.pipeline_patches(ctx)) * per_patch
    }

    /// Logical error of one addition: transversal-gate errors of every block
    /// (Eq. 4) plus idle-storage error of the registers over the duration
    /// (stored at the optimal idle SE period).
    pub fn logical_error(&self, ctx: &ArchContext) -> f64 {
        let gate_err = (self.toffoli_count() * GATES_PER_BLOCK + self.cnot_count()) as f64
            * logical::cnot_error(&ctx.error, ctx.distance, ctx.cnots_per_round);
        let t_coh = ctx.physical.coherence_time;
        let dt = idle::optimal_idle_period(&ctx.error, ctx.distance, t_coh);
        let idle_rate = idle::idle_error_per_second(&ctx.error, ctx.distance, dt, t_coh);
        let idle_err = 2.0 * self.padded_bits() as f64 * self.duration(ctx) * idle_rate;
        (gate_err + idle_err).min(1.0)
    }
}

impl Gadget for CuccaroAdder {
    fn name(&self) -> &str {
        "cuccaro-adder"
    }

    fn cost(&self, ctx: &ArchContext) -> GadgetCost {
        GadgetCost {
            qubits: self.qubits(ctx),
            seconds: self.duration(ctx),
            logical_error: self.logical_error(ctx),
            ccz_states: self.toffoli_count() as f64,
        }
    }
}

impl fmt::Display for CuccaroAdder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cuccaro adder: {} bits, {} segments of {}+{}",
            self.n_bits,
            self.segments(),
            self.runway_separation,
            self.runway_padding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ctx() -> ArchContext {
        ArchContext::paper()
    }

    #[test]
    fn paper_duration_0p28_s() {
        // Table II: r_sep 96, r_pad 43, t_r 1 ms → 2·139·1 ms = 0.278 s.
        let adder = CuccaroAdder::new(2048, 96, 43);
        let t = adder.duration(&ctx());
        assert!((t - 0.278).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn segment_accounting() {
        let adder = CuccaroAdder::new(2048, 96, 43);
        assert_eq!(adder.segments(), 22); // ceil(2048/96)
        assert_eq!(adder.padded_bits(), 2048 + 22 * 43);
        assert_eq!(adder.toffoli_count(), 2048 + 22 * 43);
    }

    #[test]
    fn no_runways_single_segment() {
        let adder = CuccaroAdder::without_runways(64);
        assert_eq!(adder.segments(), 1);
        assert_eq!(adder.padded_bits(), 64);
        // Duration scales with the full width: slow but small.
        assert!(adder.duration(&ctx()) > CuccaroAdder::new(64, 16, 8).duration(&ctx()));
    }

    #[test]
    fn ccz_rate_matches_paper_scale() {
        // 22 segments, one CCZ per 2 ms each: 11k CCZ/s during addition.
        let adder = CuccaroAdder::new(2048, 96, 43);
        let rate = adder.ccz_rate(&ctx());
        assert!((rate - 11_000.0).abs() < 1.0, "rate = {rate}");
    }

    #[test]
    fn block_pipeline_depth_is_a_few() {
        let adder = CuccaroAdder::new(2048, 96, 43);
        let copies = bell::parallel_copies(adder.block_time(&ctx()), ctx().reaction_time());
        assert!((2..=12).contains(&copies), "copies = {copies}");
    }

    #[test]
    fn error_budget_reasonable_at_d27() {
        let adder = CuccaroAdder::new(2048, 96, 43);
        let e = adder.logical_error(&ctx());
        // Must support ~1e6 invocations within a few percent budget.
        assert!(e < 5e-8, "per-addition error = {e}");
        assert!(e > 1e-12, "error should not be absurdly small: {e}");
    }

    #[test]
    fn gadget_cost_consistency() {
        let adder = CuccaroAdder::new(256, 64, 16);
        let c = adder.cost(&ctx());
        assert_eq!(c.ccz_states, adder.toffoli_count() as f64);
        assert!(c.qubits > 2.0 * adder.padded_bits() as f64);
    }

    proptest! {
        /// More bits never shrink any cost component.
        #[test]
        fn costs_monotone_in_width(n1 in 8u32..2048, n2 in 8u32..2048) {
            let (lo, hi) = if n1 < n2 { (n1, n2) } else { (n2, n1) };
            let a_lo = CuccaroAdder::new(lo, 96, 43);
            let a_hi = CuccaroAdder::new(hi, 96, 43);
            prop_assert!(a_hi.toffoli_count() >= a_lo.toffoli_count());
            prop_assert!(a_hi.qubits(&ctx()) >= a_lo.qubits(&ctx()) - 1e-9);
        }

        /// Runway identity: padded bits = n + segments·pad.
        #[test]
        fn padding_identity(n in 1u32..4096, sep in 1u32..512, pad in 0u32..128) {
            let a = CuccaroAdder::new(n, sep, pad);
            let expect = u64::from(n) + u64::from(n.div_ceil(sep)) * u64::from(pad);
            prop_assert_eq!(a.padded_bits(), expect);
        }

        /// Smaller runway separation: more segments, faster, more CCZ demand.
        #[test]
        fn separation_tradeoff(n in 512u32..4096) {
            let fine = CuccaroAdder::new(n, 64, 32);
            let coarse = CuccaroAdder::new(n, 256, 32);
            prop_assert!(fine.duration(&ctx()) < coarse.duration(&ctx()));
            prop_assert!(fine.ccz_rate(&ctx()) > coarse.ccz_rate(&ctx()));
        }
    }
}
