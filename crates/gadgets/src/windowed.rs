//! Windowed lookup-addition: the unit step of windowed modular
//! exponentiation (paper §III.2, Fig. 5b-d).
//!
//! Windowed arithmetic [65] computes the coefficients of groups of exponent
//! bits (window `w_exp`) and multiplier bits (window `w_mul`) classically,
//! loads them through a `2^(w_exp+w_mul)`-entry look-up table, and adds the
//! loaded value into the target register with a runway-segmented Cuccaro
//! adder. One *lookup-addition* is therefore a [`LookupTable`] followed by a
//! [`CuccaroAdder`]; the paper's 2048-bit compilation issues ≈ 1.07×10⁶ of
//! them at 0.17 s + 0.28 s each, which is the entire 5.6-day run time.

use crate::adder::CuccaroAdder;
use crate::lookup::LookupTable;
use raa_core::{ArchContext, Gadget, GadgetCost};
use std::fmt;

/// One windowed lookup-addition into an `n`-bit (plus runways) accumulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookupAddition {
    lookup: LookupTable,
    adder: CuccaroAdder,
}

impl LookupAddition {
    /// Builds the gadget for exponent window `w_exp`, multiplication window
    /// `w_mul`, an `n_bits` accumulator and runway parameters.
    ///
    /// # Panics
    ///
    /// Panics on zero windows or widths (see [`LookupTable::new`] and
    /// [`CuccaroAdder::new`]).
    pub fn new(w_exp: u32, w_mul: u32, n_bits: u32, r_sep: u32, r_pad: u32) -> Self {
        let adder = CuccaroAdder::new(n_bits, r_sep, r_pad);
        let lookup = LookupTable::new(w_exp + w_mul, adder.padded_bits() as u32);
        Self { lookup, adder }
    }

    /// The lookup stage.
    pub fn lookup(&self) -> &LookupTable {
        &self.lookup
    }

    /// The adder stage.
    pub fn adder(&self) -> &CuccaroAdder {
        &self.adder
    }

    /// Total |CCZ⟩ states consumed per lookup-addition.
    pub fn ccz_count(&self) -> u64 {
        self.lookup.ccz_count() + self.adder.toffoli_count()
    }

    /// Wall-clock duration: lookup then addition (the paper's 0.17 + 0.28 s).
    pub fn duration(&self, ctx: &ArchContext) -> f64 {
        self.lookup.duration(ctx) + self.adder.duration(ctx)
    }

    /// Peak |CCZ⟩ demand rate, set by the addition stage (Fig. 5c,d: factories
    /// feed the active addition).
    pub fn peak_ccz_rate(&self, ctx: &ArchContext) -> f64 {
        self.adder.ccz_rate(ctx)
    }
}

impl Gadget for LookupAddition {
    fn name(&self) -> &str {
        "lookup-addition"
    }

    fn cost(&self, ctx: &ArchContext) -> GadgetCost {
        let l = self.lookup.cost(ctx);
        let a = self.adder.cost(ctx);
        GadgetCost {
            // The two stages share the register space; the peak footprint is
            // the larger stage (Fig. 5c,d show the space rebalancing).
            qubits: l.qubits.max(a.qubits),
            seconds: l.seconds + a.seconds,
            logical_error: (l.logical_error + a.logical_error).min(1.0),
            ccz_states: l.ccz_states + a.ccz_states,
        }
    }
}

impl fmt::Display for LookupAddition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lookup-addition [{} | {}]", self.lookup, self.adder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ctx() -> ArchContext {
        ArchContext::paper()
    }

    /// The paper's Table II gadget.
    fn paper_gadget() -> LookupAddition {
        LookupAddition::new(3, 4, 2048, 96, 43)
    }

    #[test]
    fn paper_duration_0p45_s() {
        // 0.17 s lookup + 0.28 s addition (§IV.2).
        let g = paper_gadget();
        let t = g.duration(&ctx());
        assert!((t - 0.45).abs() < 0.04, "t = {t}");
    }

    #[test]
    fn ccz_per_lookup_addition_matches_paper_scale() {
        // ~1.07e6 lookup-additions for ~3e9 CCZ → ~2.9e3 CCZ per gadget.
        let g = paper_gadget();
        let c = g.ccz_count();
        assert!((2_500..=3_500).contains(&c), "ccz = {c}");
    }

    #[test]
    fn lookup_register_covers_padded_adder() {
        let g = paper_gadget();
        assert_eq!(
            g.lookup().output_bits() as u64,
            g.adder().padded_bits(),
            "the loaded value must cover runway-padded accumulator bits"
        );
    }

    #[test]
    fn cost_composition() {
        let g = paper_gadget();
        let c = g.cost(&ctx());
        assert!((c.seconds - g.duration(&ctx())).abs() < 1e-12);
        assert_eq!(c.ccz_states, g.ccz_count() as f64);
        assert!(c.logical_error < 1e-6, "error = {}", c.logical_error);
    }

    #[test]
    fn peak_demand_from_adder() {
        let g = paper_gadget();
        assert!((g.peak_ccz_rate(&ctx()) - 11_000.0).abs() < 1.0);
    }

    proptest! {
        /// Larger windows trade more lookup time for fewer invocations
        /// downstream; locally, duration and CCZ grow with window size.
        #[test]
        fn window_growth(w1 in 1u32..5, w2 in 1u32..5) {
            let small = LookupAddition::new(w1, w2, 512, 96, 43);
            let big = LookupAddition::new(w1 + 1, w2 + 1, 512, 96, 43);
            prop_assert!(big.ccz_count() > small.ccz_count());
            prop_assert!(big.duration(&ctx()) > small.duration(&ctx()));
        }
    }
}
