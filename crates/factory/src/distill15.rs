//! 15-to-1 T-state distillation: the classic alternative to cultivation,
//! implemented as an ablation baseline.
//!
//! The paper chooses magic-state cultivation [97] + the 8T-to-CCZ stage
//! because cultivation's continuous fidelity/volume trade-off beats fixed
//! distillation rounds at its operating point. This module models the
//! textbook alternative — the [[15,1,3]] Reed–Muller factory with
//! `p_out = 35 p_in³` — on the *same transversal substrate* (fast Clifford
//! rounds, Eq. (4) gate errors), so `cargo run -p raa-bench --bin ablations`
//! can quantify the paper's design choice.

use crate::ccz::T_PER_CCZ;
use raa_core::{logical, ArchContext};
use std::fmt;

/// Error suppression coefficient of one 15-to-1 round.
pub const SUPPRESSION_COEFF: f64 = 35.0;

/// Logical qubits held by one 15-to-1 unit (15 inputs + workspace).
pub const UNIT_PATCHES: f64 = 20.0;

/// Clifford depth (transversal layers) of one 15-to-1 round.
pub const ROUND_LAYERS: f64 = 8.0;

/// A (possibly multi-level) 15-to-1 T-distillation pipeline feeding the
/// 8T-to-CCZ stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distill15Factory {
    /// Raw injected |T⟩ error rate entering level 1 (≈ p_phys).
    pub injected_error: f64,
    /// Number of 15-to-1 levels (1 or 2 in practice).
    pub levels: u32,
}

impl Distill15Factory {
    /// A pipeline with `levels` levels fed by `injected_error` states.
    ///
    /// # Panics
    ///
    /// Panics unless `injected_error` is in (0, 0.1) and `levels` in 1..=3.
    pub fn new(injected_error: f64, levels: u32) -> Self {
        assert!(
            injected_error > 0.0 && injected_error < 0.1,
            "injected error must be in (0, 0.1), got {injected_error}"
        );
        assert!((1..=3).contains(&levels), "levels must be 1..=3");
        Self {
            injected_error,
            levels,
        }
    }

    /// Smallest pipeline meeting a per-|T⟩ target, if ≤ 3 levels suffice.
    pub fn for_target(injected_error: f64, t_target: f64) -> Option<Self> {
        for levels in 1..=3u32 {
            let f = Self::new(injected_error, levels);
            if f.output_error() <= t_target {
                return Some(f);
            }
        }
        None
    }

    /// Output |T⟩ error after all levels: `p ← 35 p³` per level.
    pub fn output_error(&self) -> f64 {
        let mut p = self.injected_error;
        for _ in 0..self.levels {
            p = SUPPRESSION_COEFF * p.powi(3);
        }
        p
    }

    /// Input |T⟩ states consumed per output state: 15 per level.
    pub fn inputs_per_output(&self) -> f64 {
        15f64.powi(self.levels as i32)
    }

    /// Patches held by the pipeline: level ℓ needs 15× the units of ℓ+1 to
    /// keep it fed, so space is dominated by the first level.
    pub fn patches(&self) -> f64 {
        (0..self.levels)
            .map(|l| UNIT_PATCHES * 15f64.powi((self.levels - 1 - l) as i32))
            .sum()
    }

    /// Physical qubits at the context's distance.
    pub fn qubits(&self, ctx: &ArchContext) -> f64 {
        self.patches() * ctx.atoms_per_patch()
    }

    /// Time per output |T⟩: each level's round is `ROUND_LAYERS` transversal
    /// steps plus measurement and feed-forward, pipelined across levels.
    pub fn t_output_interval(&self, ctx: &ArchContext) -> f64 {
        let cycle = ctx.cycle();
        ROUND_LAYERS * cycle.transversal_step(1.0 / ctx.cnots_per_round)
            + ctx.physical.measure_time
            + ctx.reaction_time()
    }

    /// Interval between |CCZ⟩ outputs when feeding the 8T-to-CCZ stage
    /// (eight |T⟩ per |CCZ⟩ from a single pipeline).
    pub fn ccz_interval(&self, ctx: &ArchContext) -> f64 {
        T_PER_CCZ as f64 * self.t_output_interval(ctx) / self.levels.max(1) as f64
    }

    /// |CCZ⟩ output error through the 8T-to-CCZ stage: `28 p_T²` plus the
    /// stage's Clifford term.
    pub fn ccz_output_error(&self, ctx: &ArchContext) -> f64 {
        28.0 * self.output_error().powi(2)
            + crate::ccz::CczFactory::clifford_error(ctx)
            + self.clifford_error(ctx)
    }

    /// Transversal Clifford error accumulated inside the distillation rounds.
    pub fn clifford_error(&self, ctx: &ArchContext) -> f64 {
        // ~30 CNOT-equivalents per 15-to-1 round, per level.
        30.0 * self.levels as f64
            * logical::cnot_error(&ctx.error, ctx.distance, ctx.cnots_per_round)
    }
}

impl fmt::Display for Distill15Factory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "15-to-1 x{} (p_in = {:.1e} -> p_T = {:.2e})",
            self.levels,
            self.injected_error,
            self.output_error()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccz::CczFactory;
    use proptest::prelude::*;

    fn ctx() -> ArchContext {
        ArchContext::paper()
    }

    #[test]
    fn cubic_suppression_per_level() {
        let f1 = Distill15Factory::new(1e-3, 1);
        assert!((f1.output_error() - 35.0 * 1e-9).abs() < 1e-12);
        let f2 = Distill15Factory::new(1e-3, 2);
        let expect = 35.0 * (35.0f64 * 1e-9).powi(3);
        assert!((f2.output_error() - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn paper_target_needs_two_levels() {
        // The paper's 7.7e-7 per-T target: one 15-to-1 level from p = 1e-3
        // gives 3.5e-8 — enough; from p = 1e-2-grade injected states it
        // would not be. Check the selector logic on both sides.
        let easy = Distill15Factory::for_target(1e-3, 7.7e-7).expect("reachable");
        assert_eq!(easy.levels, 1);
        let hard = Distill15Factory::for_target(5e-3, 1e-15).expect("reachable");
        assert!(hard.levels >= 2);
    }

    #[test]
    fn ablation_cultivation_beats_distillation_volume() {
        // The paper's design choice: at the RSA-2048 operating point the
        // cultivation-based factory should cost less qubit·seconds per CCZ
        // than a 15-to-1 pipeline of equal output quality.
        let c = ctx();
        let target_ccz = 1.6e-11;
        let cult = CczFactory::for_target(&c, target_ccz).expect("cultivation works");
        let cult_volume = cult.qubits(&c) * cult.production_interval(&c);

        let dist = Distill15Factory::for_target(1e-3, cult.t_input_error())
            .expect("distillation reaches it");
        let dist_volume = dist.qubits(&c) * dist.ccz_interval(&c)
            + cult.qubits(&c) * cult.production_interval(&c) * 0.0; // pipeline only
        assert!(
            cult_volume < dist_volume * 1.5,
            "cultivation {cult_volume:.1} vs 15-to-1 {dist_volume:.1} qubit*s"
        );
    }

    #[test]
    fn interval_is_milliseconds_scale() {
        let f = Distill15Factory::new(1e-3, 1);
        let t = f.ccz_interval(&ctx());
        assert!((10e-3..200e-3).contains(&t), "interval = {t}");
    }

    #[test]
    fn unreachable_target() {
        assert!(Distill15Factory::for_target(5e-2, 1e-30).is_none());
    }

    proptest! {
        /// More levels never worsen the output error below threshold-ish
        /// inputs (35 p² < 1).
        #[test]
        fn levels_monotone(p in 1e-5f64..5e-3) {
            let e1 = Distill15Factory::new(p, 1).output_error();
            let e2 = Distill15Factory::new(p, 2).output_error();
            prop_assert!(e2 <= e1);
        }

        /// Space grows with levels (first level dominates).
        #[test]
        fn space_grows_with_levels(p in 1e-4f64..5e-3) {
            let f1 = Distill15Factory::new(p, 1);
            let f2 = Distill15Factory::new(p, 2);
            prop_assert!(f2.patches() > f1.patches());
        }
    }
}
