//! The 8T-to-CCZ magic-state factory (paper §III.6, Fig. 8).
//!
//! The factory consumes eight cultivated |T⟩ states through the transversal
//! T gate of the [[8,3,2]] cube code and emits one |CCZ⟩ state after
//! post-selection, suppressing input Z errors quadratically:
//! `p_out = 28 p_in² + O(p_in³)` (Eq. 8 — the coefficient 28 is validated by
//! exact enumeration in [`raa_surface::code832`]).
//!
//! Layout (Fig. 8c,d): four output patches and the eight [[8,3,2]] block
//! patches fit a 12d × 3d region executing four transversal CNOT layers with
//! a 1D move plan (no qubit re-ordering), plus a 12d × 1d bottom row hosting
//! eight parallel cultivation plots. Timing: the CNOT layers run at one SE
//! round per gate while the |T⟩ states grow to full distance; output requires
//! block measurement plus a feed-forward (reaction) step.

use crate::cultivation::CultivationModel;
use raa_core::{logical, ArchContext, Gadget, GadgetCost};
use raa_physics::Footprint;
use raa_surface::code832;
use std::fmt;

/// Number of |T⟩ inputs per |CCZ⟩ output.
pub const T_PER_CCZ: usize = 8;

/// Transversal CNOT layers in the factory circuit (Fig. 8a).
pub const FACTORY_CNOT_LAYERS: usize = 4;

/// Logical CNOT count of the factory circuit (Fig. 8c: the four layers touch
/// the four outputs and eight block qubits).
pub const FACTORY_CNOTS: usize = 16;

/// Patches held by the factory proper: 4 outputs + 8 code-block qubits.
pub const FACTORY_PATCHES: usize = 12;

/// Cultivation plots in the bottom row (12 slots of d × d; 8 active).
pub const CULTIVATION_SLOTS: usize = 12;

/// An 8T-to-CCZ factory instance with its cultivation stage.
///
/// # Example
///
/// ```
/// use raa_factory::ccz::CczFactory;
/// use raa_core::ArchContext;
///
/// let ctx = ArchContext::paper();
/// let f = CczFactory::for_target(&ctx, 1.6e-11).unwrap();
/// // The paper's numbers: per-T error ≈ 7.7e-7 for a 1.6e-11 CCZ target.
/// assert!((f.t_input_error() / 7.7e-7 - 1.0).abs() < 0.15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CczFactory {
    t_input_error: f64,
    cultivation: CultivationModel,
}

impl CczFactory {
    /// Builds a factory whose inputs have per-|T⟩ error `t_input_error`.
    ///
    /// # Panics
    ///
    /// Panics unless `t_input_error` is in (0, 0.01) — cultivation cannot
    /// sensibly target worse than ~1%.
    pub fn new(t_input_error: f64, cultivation: CultivationModel) -> Self {
        assert!(
            t_input_error > 0.0 && t_input_error < 1e-2,
            "per-T input error must be in (0, 1e-2), got {t_input_error}"
        );
        Self {
            t_input_error,
            cultivation,
        }
    }

    /// Chooses the per-|T⟩ input error so the factory's total output error
    /// meets `ccz_target`, accounting for the factory's own Clifford-layer
    /// errors at the context's distance. Returns `None` if the Clifford
    /// errors alone exceed the target (distance too small).
    pub fn for_target(ctx: &ArchContext, ccz_target: f64) -> Option<Self> {
        assert!(
            ccz_target > 0.0 && ccz_target < 1.0,
            "CCZ error target must be in (0, 1)"
        );
        let clifford = Self::clifford_error(ctx);
        if clifford >= ccz_target {
            return None;
        }
        // Invert p_out = 28 p² for the remaining budget.
        let p_in = ((ccz_target - clifford) / 28.0).sqrt();
        if p_in >= 1e-2 {
            // Cultivation would be trivial; clamp to the model's ceiling.
            return Some(Self::new(9.9e-3, CultivationModel::paper()));
        }
        Some(Self::new(p_in, CultivationModel::paper()))
    }

    /// The per-|T⟩ input error this factory requires.
    pub fn t_input_error(&self) -> f64 {
        self.t_input_error
    }

    /// Error contributed by the factory's own transversal Clifford layers
    /// (Eq. 4 per CNOT at the context's distance; the paper treats these as
    /// negligible thanks to the inner surface-code protection).
    pub fn clifford_error(ctx: &ArchContext) -> f64 {
        FACTORY_CNOTS as f64 * logical::cnot_error(&ctx.error, ctx.distance, ctx.cnots_per_round)
    }

    /// Total output error per |CCZ⟩: exact [[8,3,2]] enumeration plus the
    /// Clifford-layer term.
    pub fn output_error(&self, ctx: &ArchContext) -> f64 {
        code832::output_error_exact(self.t_input_error) + Self::clifford_error(ctx)
    }

    /// Probability an attempt is discarded by post-selection.
    pub fn rejection_probability(&self) -> f64 {
        code832::rejection_probability(self.t_input_error)
    }

    /// Footprint in lattice sites: 12d × 3d factory + 12d × 1d cultivation row.
    pub fn footprint(&self, ctx: &ArchContext) -> Footprint {
        let d = u64::from(ctx.distance);
        Footprint::new(12 * d, 3 * d).stack_vertical(Footprint::new(12 * d, d))
    }

    /// Physical atoms: 12 full patches plus the cultivation row at patch
    /// density (≈ 2 atoms per site).
    pub fn qubits(&self, ctx: &ArchContext) -> f64 {
        let per_patch = ctx.atoms_per_patch();
        (FACTORY_PATCHES + CULTIVATION_SLOTS) as f64 * per_patch
    }

    /// Wall-clock interval between |CCZ⟩ outputs from one factory:
    /// the maximum of the factory pipeline period and the cultivation batch
    /// time, inflated by post-selection retries.
    pub fn production_interval(&self, ctx: &ArchContext) -> f64 {
        let cycle = ctx.cycle();
        // Factory pipeline: 4 CNOT layers + teleported-T layer at 1 SE round
        // each, then block measurement and feed-forward.
        let factory_time = (FACTORY_CNOT_LAYERS + 1) as f64
            * cycle.transversal_step(1.0 / ctx.cnots_per_round)
            + ctx.physical.measure_time
            + ctx.reaction_time();
        // Cultivation batch: 8 states on the bottom row in parallel.
        let row_atoms = CULTIVATION_SLOTS as f64 * ctx.atoms_per_patch();
        let rounds =
            T_PER_CCZ as f64 * self.cultivation.expected_volume(self.t_input_error) / row_atoms;
        let cultivation_time = rounds * cycle.idle_cycle_time();
        let retry = 1.0 / (1.0 - self.rejection_probability());
        factory_time.max(cultivation_time) * retry
    }

    /// |CCZ⟩ output rate of one factory, per second.
    pub fn production_rate(&self, ctx: &ArchContext) -> f64 {
        1.0 / self.production_interval(ctx)
    }

    /// Number of factories needed to sustain `ccz_per_second` demand.
    pub fn count_for_demand(&self, ctx: &ArchContext, ccz_per_second: f64) -> u64 {
        assert!(
            ccz_per_second >= 0.0 && ccz_per_second.is_finite(),
            "demand must be non-negative"
        );
        (ccz_per_second * self.production_interval(ctx)).ceil() as u64
    }
}

impl Gadget for CczFactory {
    fn name(&self) -> &str {
        "8t-to-ccz-factory"
    }

    /// Cost of producing one |CCZ⟩ state.
    fn cost(&self, ctx: &ArchContext) -> GadgetCost {
        GadgetCost {
            qubits: self.qubits(ctx),
            seconds: self.production_interval(ctx),
            logical_error: self.output_error(ctx),
            ccz_states: -1.0, // produces one
        }
    }
}

impl fmt::Display for CczFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "8T-to-CCZ factory (p_T = {:.2e})", self.t_input_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ctx() -> ArchContext {
        ArchContext::paper()
    }

    #[test]
    fn paper_target_gives_paper_t_error() {
        // §III.6: CCZ target 1.6e-11 → per-T cultivation error 7.7e-7.
        let f = CczFactory::for_target(&ctx(), 1.6e-11).unwrap();
        let p_t = f.t_input_error();
        assert!((5e-7..9e-7).contains(&p_t), "p_T = {p_t}");
    }

    #[test]
    fn output_error_meets_target() {
        let target = 1.6e-11;
        let f = CczFactory::for_target(&ctx(), target).unwrap();
        assert!(f.output_error(&ctx()) <= target * 1.01);
    }

    #[test]
    fn quadratic_suppression() {
        let f1 = CczFactory::new(1e-4, CultivationModel::paper());
        let f2 = CczFactory::new(1e-5, CultivationModel::paper());
        let big = ctx().with_distance(45); // make Clifford term negligible
        let ratio = f1.output_error(&big) / f2.output_error(&big);
        assert!((ratio / 100.0 - 1.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn production_interval_is_milliseconds() {
        let f = CczFactory::for_target(&ctx(), 1.6e-11).unwrap();
        let t = f.production_interval(&ctx());
        // Between the ~5.5 ms factory pipeline and ~15 ms cultivation limit.
        assert!((3e-3..30e-3).contains(&t), "interval = {t}");
    }

    #[test]
    fn paper_scale_factory_count() {
        // §IV.2: each lookup-addition consumes ~5900 CCZ in ~0.45 s, i.e.
        // ~13k CCZ/s at the paper's parameters... with Table II quoting a
        // 192-factory cap, one factory must deliver ≈ 70-110 CCZ/s.
        let f = CczFactory::for_target(&ctx(), 1.6e-11).unwrap();
        let rate = f.production_rate(&ctx());
        assert!((50.0..400.0).contains(&rate), "rate = {rate}/s");
        let n = f.count_for_demand(&ctx(), 20_000.0);
        assert!((100..=400).contains(&n), "count = {n}");
    }

    #[test]
    fn footprint_matches_fig8() {
        let f = CczFactory::for_target(&ctx(), 1.6e-11).unwrap();
        let fp = f.footprint(&ctx());
        assert_eq!(fp.width, 12 * 27);
        assert_eq!(fp.height, 4 * 27);
    }

    #[test]
    fn unreachable_target_returns_none() {
        let small = ctx().with_distance(5);
        assert!(CczFactory::for_target(&small, 1e-16).is_none());
    }

    #[test]
    fn gadget_interface() {
        let f = CczFactory::for_target(&ctx(), 1.6e-11).unwrap();
        let c = f.cost(&ctx());
        assert!(c.qubits > 1e4);
        assert!(c.seconds > 0.0);
        assert_eq!(f.name(), "8t-to-ccz-factory");
    }

    proptest! {
        /// Cleaner inputs never increase the output error.
        #[test]
        fn output_error_monotone(a in 1e-8f64..1e-3, b in 1e-8f64..1e-3) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let c = ctx();
            let f_lo = CczFactory::new(lo, CultivationModel::paper());
            let f_hi = CczFactory::new(hi, CultivationModel::paper());
            prop_assert!(f_lo.output_error(&c) <= f_hi.output_error(&c) + 1e-18);
        }

        /// More demand never needs fewer factories.
        #[test]
        fn demand_monotone(r1 in 0.0f64..1e5, r2 in 0.0f64..1e5) {
            let f = CczFactory::for_target(&ctx(), 1.6e-11).unwrap();
            let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
            prop_assert!(f.count_for_demand(&ctx(), lo) <= f.count_for_demand(&ctx(), hi));
        }
    }
}
