//! Magic-state cultivation model: the first factory stage (paper §III.6).
//!
//! The paper prepares high-quality |T⟩ inputs with the cultivation scheme of
//! Gidney–Shutty–Jones [97], which trades post-selection overhead against
//! output fidelity continuously. Full cultivation simulation (post-selected
//! colour-code growth at p = 10⁻³) is outside our substrate, so per the
//! substitution rule we model its published cost curve: a power law in the
//! target error anchored to the paper's quoted reading of [97] Fig. 1 —
//! **ε = 7.7×10⁻⁷ costs an expected 1.5×10⁴ qubit·rounds** — with exponent
//! set so that an order-of-magnitude better fidelity costs ≈ 4× more volume
//! (the steep-but-polynomial scaling of the published curve).

use std::fmt;

/// Anchor point from the paper: target per-|T⟩ error for 2048-bit factoring.
pub const ANCHOR_ERROR: f64 = 7.7e-7;

/// Anchor point from the paper: expected volume at [`ANCHOR_ERROR`].
pub const ANCHOR_VOLUME_QUBIT_ROUNDS: f64 = 1.5e4;

/// Default power-law exponent β in `V(ε) = V₀ (ε₀/ε)^β`.
pub const DEFAULT_EXPONENT: f64 = 0.6;

/// Cultivation cost model `V(ε) = V₀ · (ε₀/ε)^β` in qubit·rounds.
///
/// # Example
///
/// ```
/// use raa_factory::cultivation::CultivationModel;
///
/// let m = CultivationModel::paper();
/// // The paper's anchor: 7.7e-7 → 1.5e4 qubit·rounds.
/// let v = m.expected_volume(7.7e-7);
/// assert!((v - 1.5e4).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CultivationModel {
    anchor_error: f64,
    anchor_volume: f64,
    exponent: f64,
}

impl Default for CultivationModel {
    fn default() -> Self {
        Self::paper()
    }
}

impl CultivationModel {
    /// The paper-anchored model.
    pub fn paper() -> Self {
        Self {
            anchor_error: ANCHOR_ERROR,
            anchor_volume: ANCHOR_VOLUME_QUBIT_ROUNDS,
            exponent: DEFAULT_EXPONENT,
        }
    }

    /// A model with a custom anchor and exponent.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < anchor_error < 1`, `anchor_volume > 0`, `exponent > 0`.
    pub fn new(anchor_error: f64, anchor_volume: f64, exponent: f64) -> Self {
        assert!(
            anchor_error > 0.0 && anchor_error < 1.0,
            "anchor error must be in (0, 1)"
        );
        assert!(anchor_volume > 0.0, "anchor volume must be positive");
        assert!(exponent > 0.0, "exponent must be positive");
        Self {
            anchor_error,
            anchor_volume,
            exponent,
        }
    }

    /// Expected volume (qubit·rounds, including discarded attempts) to
    /// cultivate one |T⟩ state of error at most `target_error`.
    ///
    /// # Panics
    ///
    /// Panics unless `target_error` is in (0, 1).
    pub fn expected_volume(&self, target_error: f64) -> f64 {
        assert!(
            target_error > 0.0 && target_error < 1.0,
            "target error must be in (0, 1), got {target_error}"
        );
        self.anchor_volume * (self.anchor_error / target_error).powf(self.exponent)
    }

    /// The best error achievable within an expected volume `v` qubit·rounds
    /// (the inverse of [`CultivationModel::expected_volume`]).
    pub fn error_for_volume(&self, v: f64) -> f64 {
        assert!(v > 0.0, "volume must be positive");
        self.anchor_error * (self.anchor_volume / v).powf(1.0 / self.exponent)
    }

    /// Expected rounds to produce one |T⟩ on a plot of `atoms` atoms.
    pub fn expected_rounds(&self, target_error: f64, atoms: f64) -> f64 {
        assert!(atoms > 0.0, "need a positive number of atoms");
        self.expected_volume(target_error) / atoms
    }
}

impl fmt::Display for CultivationModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cultivation: V(ε) = {:.3e}·({:.2e}/ε)^{}",
            self.anchor_volume, self.anchor_error, self.exponent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn anchor_point_reproduced() {
        let m = CultivationModel::paper();
        assert!((m.expected_volume(ANCHOR_ERROR) - ANCHOR_VOLUME_QUBIT_ROUNDS).abs() < 1e-6);
    }

    #[test]
    fn volume_error_round_trip() {
        let m = CultivationModel::paper();
        for eps in [1e-5, 7.7e-7, 1e-8] {
            let v = m.expected_volume(eps);
            assert!((m.error_for_volume(v) / eps - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn better_fidelity_costs_more() {
        let m = CultivationModel::paper();
        assert!(m.expected_volume(1e-8) > m.expected_volume(1e-6));
        // One decade of fidelity ≈ 10^0.6 ≈ 4x volume.
        let ratio = m.expected_volume(1e-8) / m.expected_volume(1e-7);
        assert!((ratio - 10f64.powf(0.6)).abs() < 0.01);
    }

    #[test]
    fn rounds_scale_inverse_with_atoms() {
        let m = CultivationModel::paper();
        let r1 = m.expected_rounds(ANCHOR_ERROR, 1000.0);
        let r2 = m.expected_rounds(ANCHOR_ERROR, 2000.0);
        assert!((r1 / r2 - 2.0).abs() < 1e-12);
        assert!((r1 - 15.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "target error")]
    fn rejects_bad_target() {
        let _ = CultivationModel::paper().expected_volume(0.0);
    }

    proptest! {
        /// Monotone: lower target error never costs less volume.
        #[test]
        fn volume_monotone(a in 1e-9f64..1e-3, b in 1e-9f64..1e-3) {
            let m = CultivationModel::paper();
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(m.expected_volume(lo) >= m.expected_volume(hi));
        }
    }
}
