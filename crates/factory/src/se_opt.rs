//! Optimizing the syndrome-extraction frequency inside the factory
//! (paper Fig. 11a,b).
//!
//! For each number of SE rounds per factory CNOT, pick the smallest code
//! distance meeting the |CCZ⟩ error target and report the factory's
//! space–time volume per output state. The optimum sits at ≲ 1 SE round per
//! gate, with only a weak dependence on the decoding factor α — the basis for
//! the paper's choice of one round per transversal gate throughout.

use crate::ccz::CczFactory;
use raa_core::ArchContext;

/// One point of the Fig. 11(a,b) sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorySweepPoint {
    /// SE rounds per CNOT (1/x).
    pub se_rounds_per_cnot: f64,
    /// Smallest odd distance meeting the target, if any.
    pub distance: Option<u32>,
    /// Space–time volume per |CCZ⟩ (qubit·seconds), if reachable.
    pub volume_per_ccz: Option<f64>,
}

/// Sweeps SE rounds per CNOT for a factory meeting `ccz_target`.
pub fn sweep_factory_se_rounds(
    base: &ArchContext,
    ccz_target: f64,
    rounds_per_cnot: &[f64],
) -> Vec<FactorySweepPoint> {
    rounds_per_cnot
        .iter()
        .map(|&r| {
            assert!(r > 0.0 && r.is_finite(), "rounds per CNOT must be positive");
            let x = 1.0 / r;
            let mut found = None;
            for d in (3..=99u32).step_by(2) {
                let ctx = ArchContext {
                    distance: d,
                    cnots_per_round: x,
                    ..*base
                };
                if let Some(f) = CczFactory::for_target(&ctx, ccz_target) {
                    if f.output_error(&ctx) <= ccz_target * 1.01 {
                        let v = f.qubits(&ctx) * f.production_interval(&ctx);
                        found = Some((d, v));
                        break;
                    }
                }
            }
            FactorySweepPoint {
                se_rounds_per_cnot: r,
                distance: found.map(|(d, _)| d),
                volume_per_ccz: found.map(|(_, v)| v),
            }
        })
        .collect()
}

/// The SE-rounds-per-CNOT value minimizing factory volume over `candidates`.
pub fn optimal_factory_se_rounds(
    base: &ArchContext,
    ccz_target: f64,
    candidates: &[f64],
) -> Option<f64> {
    sweep_factory_se_rounds(base, ccz_target, candidates)
        .into_iter()
        .filter_map(|p| p.volume_per_ccz.map(|v| (p.se_rounds_per_cnot, v)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("volumes are finite"))
        .map(|(r, _)| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_core::ErrorModelParams;

    const CANDIDATES: [f64; 7] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0];

    #[test]
    fn sweep_produces_reachable_points() {
        let pts = sweep_factory_se_rounds(&ArchContext::paper(), 1.6e-11, &CANDIDATES);
        assert_eq!(pts.len(), CANDIDATES.len());
        assert!(pts.iter().all(|p| p.volume_per_ccz.is_some()));
    }

    #[test]
    fn optimum_at_or_below_one_round_per_cnot() {
        // Fig. 11(a): "around 1 SE round per gate provides a good balance".
        let opt = optimal_factory_se_rounds(&ArchContext::paper(), 1.6e-11, &CANDIDATES)
            .expect("target reachable");
        assert!(opt <= 2.0, "optimal rounds per CNOT = {opt}");
    }

    #[test]
    fn larger_alpha_shifts_balance_mildly() {
        // Fig. 11(b): α = 1/2 (threshold 0.67%) still has a shallow optimum.
        let mut ctx = ArchContext::paper();
        ctx.error = ErrorModelParams::paper().with_alpha(0.5);
        let pts = sweep_factory_se_rounds(&ctx, 1.6e-11, &CANDIDATES);
        let best = pts
            .iter()
            .filter_map(|p| p.volume_per_ccz.map(|v| (p.se_rounds_per_cnot, v)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let worst_of_middle: f64 = pts
            .iter()
            .filter(|p| (0.5..=4.0).contains(&p.se_rounds_per_cnot))
            .filter_map(|p| p.volume_per_ccz)
            .fold(0.0, f64::max);
        // The middle of the sweep is within ~2.5x of optimal: shallow bowl.
        assert!(worst_of_middle / best.1 < 2.5, "{pts:?}");
    }

    #[test]
    fn many_rounds_per_cnot_cost_more_volume() {
        let pts = sweep_factory_se_rounds(&ArchContext::paper(), 1.6e-11, &[1.0, 16.0]);
        let (v1, v16) = (
            pts[0].volume_per_ccz.unwrap(),
            pts[1].volume_per_ccz.unwrap(),
        );
        assert!(
            v16 > v1,
            "16 rounds/CNOT {v16} should cost more than 1 {v1}"
        );
    }
}
