//! Circuit-level Clifford skeletons of the factory protocols, for the
//! `raa-sim` Monte-Carlo pipeline.
//!
//! The non-Clifford content of a factory (the |T⟩ injections themselves) is
//! outside the reach of stabilizer sampling, but the factory's *syndrome
//! structure* is set entirely by its Clifford frame: the deterministic
//! transversal-CNOT network that encodes, checks and decodes the block. Each
//! [`FactoryProtocol`] exposes that frame as a cycled CNOT layer schedule —
//! one layer per SE round, the paper's one-SE-round-per-transversal-gate
//! operating point (§III.6, Fig. 11) — which
//! [`raa_surface::ScheduledCnotExperiment`] turns into a decodable
//! circuit with uniform detector layering.

use raa_surface::{Basis, NoiseModel, ScheduledCnotExperiment};

/// Which factory protocol's Clifford skeleton to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FactoryProtocol {
    /// 15-to-1 |T⟩ distillation: the transversal encoding network of the
    /// [[15,1,3]] punctured Reed–Muller code (four layers of seven CNOTs,
    /// one per code coordinate-hyperplane).
    Distill15,
    /// 8T-to-CCZ on the [[8,3,2]] cube code (paper §III.6, Fig. 8): three
    /// cube-dimension CNOT layers over eight patches.
    Ccz,
    /// Magic-state cultivation's repeated two-patch check: alternating
    /// CNOT directions between the cultivated patch and its checker.
    Cultivation,
}

impl FactoryProtocol {
    /// All protocols, in catalog order.
    pub const ALL: [FactoryProtocol; 3] = [
        FactoryProtocol::Distill15,
        FactoryProtocol::Ccz,
        FactoryProtocol::Cultivation,
    ];

    /// Stable lowercase label used in records and on the wire.
    pub fn label(self) -> &'static str {
        match self {
            FactoryProtocol::Distill15 => "distill15",
            FactoryProtocol::Ccz => "ccz",
            FactoryProtocol::Cultivation => "cultivation",
        }
    }

    /// Number of surface-code patches the skeleton occupies.
    pub fn patches(self) -> usize {
        match self {
            FactoryProtocol::Distill15 => 15,
            FactoryProtocol::Ccz => 8,
            FactoryProtocol::Cultivation => 2,
        }
    }

    /// The cycled transversal-CNOT layer schedule (0-based patch pairs).
    pub fn schedule(self) -> Vec<Vec<(usize, usize)>> {
        match self {
            // [[15,1,3]] Reed–Muller encoder: qubits are labelled 1..=15 by
            // their coordinate bits; layer w ∈ {1,2,4,8} copies qubit w onto
            // every qubit sharing that bit. Patch index = qubit − 1.
            FactoryProtocol::Distill15 => [1usize, 2, 4, 8]
                .iter()
                .map(|&w| {
                    (1..=15)
                        .filter(|&q| q & w != 0 && q != w)
                        .map(|q| (w - 1, q - 1))
                        .collect()
                })
                .collect(),
            // Cube code: one CNOT layer per cube dimension, pairing vertices
            // across the x, y and z faces.
            FactoryProtocol::Ccz => vec![
                vec![(0, 1), (2, 3), (4, 5), (6, 7)],
                vec![(0, 2), (1, 3), (4, 6), (5, 7)],
                vec![(0, 4), (1, 5), (2, 6), (3, 7)],
            ],
            FactoryProtocol::Cultivation => vec![vec![(0, 1)], vec![(1, 0)]],
        }
    }

    /// The decodable circuit-level experiment for this protocol.
    ///
    /// # Example
    ///
    /// ```
    /// use raa_factory::circuits::FactoryProtocol;
    /// use raa_surface::NoiseModel;
    ///
    /// let exp = FactoryProtocol::Ccz.experiment(3, 4, NoiseModel::uniform(1e-3));
    /// assert_eq!(exp.build().num_detectors(), 4 * 8 * 8);
    /// ```
    pub fn experiment(
        self,
        distance: u32,
        rounds: usize,
        noise: NoiseModel,
    ) -> ScheduledCnotExperiment {
        ScheduledCnotExperiment {
            distance,
            patches: self.patches(),
            schedule: self.schedule(),
            rounds,
            basis: Basis::Z,
            noise,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_shapes() {
        let d15 = FactoryProtocol::Distill15.schedule();
        assert_eq!(d15.len(), 4);
        for layer in &d15 {
            assert_eq!(layer.len(), 7, "each hyperplane holds 7 targets");
        }
        let ccz = FactoryProtocol::Ccz.schedule();
        assert_eq!(ccz.len(), 3);
        for layer in &ccz {
            assert_eq!(layer.len(), 4, "each cube dimension pairs 8 vertices");
        }
        assert_eq!(FactoryProtocol::Cultivation.schedule().len(), 2);
    }

    #[test]
    fn schedules_stay_in_range() {
        for proto in FactoryProtocol::ALL {
            let patches = proto.patches();
            for layer in proto.schedule() {
                for (c, t) in layer {
                    assert!(
                        c < patches && t < patches && c != t,
                        "{proto:?}: ({c}, {t})"
                    );
                }
            }
        }
    }

    #[test]
    fn experiments_layer_uniformly() {
        for proto in FactoryProtocol::ALL {
            let exp = proto.experiment(3, 3, NoiseModel::uniform(1e-3));
            let c = exp.build();
            assert_eq!(
                c.num_detectors(),
                3 * proto.patches() * 8,
                "{proto:?}: rounds × patches × (d² − 1)"
            );
            assert_eq!(c.num_observables(), proto.patches());
        }
    }
}
