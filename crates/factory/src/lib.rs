//! Magic-state factories for the transversal architecture (paper §III.6).
//!
//! Universality comes from |CCZ⟩ resource states prepared in two stages:
//!
//! 1. [`cultivation`] — magic-state cultivation of |T⟩ inputs (cost curve
//!    anchored to the paper's quoted 7.7×10⁻⁷ → 1.5×10⁴ qubit·rounds);
//! 2. [`ccz`] — the 8T-to-CCZ factory on the [[8,3,2]] cube code with
//!    `p_out = 28 p_in²` suppression (Eq. 8, validated by exact enumeration),
//!    a 12d × 4d footprint (Fig. 8d) and a pipelined production interval.
//!
//! [`se_opt`] regenerates the paper's Fig. 11(a,b): the space–time volume per
//! |CCZ⟩ as a function of SE rounds per factory CNOT, which is what justifies
//! running one SE round per transversal gate.
//!
//! # Example
//!
//! ```
//! use raa_core::ArchContext;
//! use raa_factory::CczFactory;
//!
//! let ctx = ArchContext::paper();
//! let factory = CczFactory::for_target(&ctx, 1.6e-11).unwrap();
//! // ~100 CCZ per second per factory at paper parameters.
//! let rate = factory.production_rate(&ctx);
//! assert!(rate > 30.0 && rate < 1000.0);
//! ```

#![forbid(unsafe_code)]

pub mod ccz;
pub mod circuits;
pub mod cultivation;
pub mod distill15;
pub mod se_opt;

pub use ccz::{CczFactory, FACTORY_PATCHES, T_PER_CCZ};
pub use circuits::FactoryProtocol;
pub use cultivation::CultivationModel;
pub use distill15::Distill15Factory;
pub use se_opt::{optimal_factory_se_rounds, sweep_factory_se_rounds, FactorySweepPoint};
