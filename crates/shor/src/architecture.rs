//! End-to-end resource estimation on the transversal architecture
//! (paper §IV.1–IV.2).
//!
//! Assembles the subroutine gadgets into the full 2048-bit factoring layout:
//! three registers (accumulator with runways, multiplier in dense idle
//! storage, look-up output), the GHZ fan-out layer, the Bell-bridged adder
//! pipeline, and just enough 8T-to-CCZ factories to sustain the addition
//! stage's magic-state demand (capped by Table II's maximum). Time is the
//! lookup-addition count times the reaction-limited gadget duration,
//! stretched if the factories cannot keep up; errors are budgeted across
//! CCZ states, transversal gates, idling and the runway approximation.

use crate::ekera_hastad::{operation_counts, AlgorithmParams, FactoringInstance};
use raa_core::{idle, ArchContext, ErrorModelParams, SpaceTime};
use raa_factory::CczFactory;
use raa_gadgets::LookupAddition;
use raa_physics::PhysicalParams;
use std::fmt;

/// Fraction of the failure budget reserved for |CCZ⟩ states (§III.6: "the
/// CCZ error budget should not exceed 5%").
pub const CCZ_BUDGET: f64 = 0.05;

/// Default total failure budget per run (CCZ 5% + gates/idle/runways 3%).
pub const DEFAULT_TOTAL_BUDGET: f64 = 0.08;

/// Fractional space overhead for routing corridors and interface zones.
pub const ROUTING_OVERHEAD: f64 = 0.02;

/// The full transversal-architecture estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransversalArchitecture {
    /// The factoring instance.
    pub instance: FactoringInstance,
    /// Algorithm parameters (Table II).
    pub params: AlgorithmParams,
    /// Platform parameters (Table I).
    pub physical: PhysicalParams,
    /// Logical error model (§III.4).
    pub error: ErrorModelParams,
    /// Dense qLDPC idle-storage compression factor (§IV.3.4), if enabled.
    pub qldpc_storage_compression: Option<f64>,
}

impl TransversalArchitecture {
    /// The paper's headline configuration: RSA-2048 with Table II parameters.
    pub fn paper() -> Self {
        Self {
            instance: FactoringInstance::rsa2048(),
            params: AlgorithmParams::paper_table2(),
            physical: PhysicalParams::default(),
            error: ErrorModelParams::paper(),
            qldpc_storage_compression: None,
        }
    }

    /// Returns a copy with a different logical-error model (e.g. one fitted
    /// to circuit-level simulations instead of the paper's assumed
    /// parameters).
    pub fn with_error_model(mut self, error: ErrorModelParams) -> Self {
        self.error = error;
        self
    }

    /// The paper's RSA-2048 instance driven by a **simulation-calibrated**
    /// error model: keeps the calibrated threshold `p_thres` and decoding
    /// factor `α` from `model` (a `FitResult::to_params` conversion at the
    /// sweep's own noise — see `raa-sim`'s `calibrate`), re-anchors
    /// `p_phys` at the paper's hardware rate, and re-optimizes the code
    /// distance for [`DEFAULT_TOTAL_BUDGET`]. Returns the architecture and
    /// its estimate — the simulation-calibrated Table II line.
    ///
    /// # Panics
    ///
    /// Panics if the calibrated threshold does not exceed the hardware
    /// physical error rate (the calibrated decoder would run the hardware
    /// at or above threshold), or if no searched distance reaches the
    /// |CCZ⟩ target.
    pub fn calibrated(model: ErrorModelParams) -> (Self, ResourceEstimate) {
        let hardware_p = ErrorModelParams::paper().p_phys;
        assert!(
            model.p_thres > hardware_p,
            "calibrated p_thres = {} must exceed the hardware p_phys = {hardware_p} \
             (fitted Lambda too small for this platform)",
            model.p_thres
        );
        Self::paper()
            .with_error_model(model.with_p_phys(hardware_p))
            .with_optimized_distance(DEFAULT_TOTAL_BUDGET)
    }

    /// The architecture context at these parameters.
    pub fn context(&self) -> ArchContext {
        ArchContext {
            physical: self.physical,
            error: self.error,
            distance: self.params.distance,
            cnots_per_round: 1.0,
        }
    }

    /// Runs the resource estimate.
    ///
    /// # Panics
    ///
    /// Panics if the |CCZ⟩ error target is unreachable at this distance
    /// (use [`TransversalArchitecture::try_estimate`] to probe).
    pub fn estimate(&self) -> ResourceEstimate {
        self.try_estimate()
            .expect("CCZ target unreachable at this distance")
    }

    /// Runs the resource estimate, or `None` when the code distance is too
    /// small for the factories to reach the per-|CCZ⟩ error target.
    pub fn try_estimate(&self) -> Option<ResourceEstimate> {
        self.params.validate(&self.instance);
        let ctx = self.context();
        let counts = operation_counts(&self.instance, &self.params);
        let gadget = LookupAddition::new(
            self.params.w_exp,
            self.params.w_mul,
            self.instance.n_bits(),
            self.params.r_sep,
            self.params.r_pad,
        );

        // --- Magic-state supply ---------------------------------------------
        let ccz_per_gadget = gadget.ccz_count() as f64;
        let ccz_total = counts.lookup_additions as f64 * ccz_per_gadget;
        let ccz_target = CCZ_BUDGET / ccz_total;
        let factory = CczFactory::for_target(&ctx, ccz_target)?;
        let factory_rate = factory.production_rate(&ctx);
        let peak_demand = gadget.peak_ccz_rate(&ctx);
        let factories = factory
            .count_for_demand(&ctx, peak_demand)
            .min(u64::from(self.params.max_factories))
            .max(1);
        let supply = factories as f64 * factory_rate;

        // --- Time -----------------------------------------------------------
        let adder = gadget.adder();
        let lookup = gadget.lookup();
        let t_add = adder
            .duration(&ctx)
            .max(adder.toffoli_count() as f64 / supply);
        let t_lookup = lookup
            .duration(&ctx)
            .max(lookup.ccz_count() as f64 / supply);
        let seconds = counts.lookup_additions as f64 * (t_lookup + t_add);

        // --- Space (peak over the two phases, Fig. 5c,d / Fig. 12a) ---------
        let per_patch = ctx.atoms_per_patch();
        let dense_patch = f64::from(ctx.distance).powi(2); // data-only storage
        let padded = adder.padded_bits() as f64;
        let compression = self.qldpc_storage_compression.unwrap_or(1.0);
        let accumulator = padded * per_patch;
        let multiplier = f64::from(self.instance.n_bits()) * dense_patch / compression;
        let lookup_output = padded * per_patch;
        let ghz = lookup.ghz_patches() * per_patch;
        let pipeline = adder.pipeline_patches(&ctx) * per_patch;
        let factory_qubits = factories as f64 * factory.qubits(&ctx);
        let space = SpaceBreakdown {
            accumulator,
            multiplier,
            lookup_output,
            ghz_fanout: ghz,
            adder_pipeline: pipeline,
            factories: factory_qubits,
        };
        let lookup_phase = accumulator + multiplier + lookup_output + ghz + factory_qubits;
        let addition_phase = accumulator + multiplier + lookup_output + pipeline + factory_qubits;
        let qubits = lookup_phase.max(addition_phase) * (1.0 + ROUTING_OVERHEAD);

        // --- Errors ----------------------------------------------------------
        let gate_error = counts.lookup_additions as f64
            * (lookup.logical_error(&ctx) + adder.logical_error(&ctx));
        let ccz_error = ccz_total * factory.output_error(&ctx);
        let runway_error = counts.lookup_additions as f64
            * f64::from(adder.segments())
            * 0.5f64.powi(self.params.r_pad as i32);
        // Idle error of registers not covered inside the gadgets (multiplier
        // in dense storage over the whole run).
        let t_coh = self.physical.coherence_time;
        let dt = idle::optimal_idle_period(&self.error, ctx.distance, t_coh);
        let idle_rate = idle::idle_error_per_second(&self.error, ctx.distance, dt, t_coh);
        let storage_error = f64::from(self.instance.n_bits()) * seconds * idle_rate;
        let errors = ErrorBreakdown {
            ccz: ccz_error,
            gates: gate_error,
            runways: runway_error,
            storage: storage_error,
        };
        let total_error = errors.total();

        Some(ResourceEstimate {
            qubits,
            seconds,
            total_error,
            distance: ctx.distance,
            factories,
            ccz_total,
            lookup_additions: counts.lookup_additions,
            lookup_seconds: t_lookup,
            addition_seconds: t_add,
            space,
            errors,
        })
    }

    /// Re-selects the smallest odd code distance meeting `total_budget`,
    /// returning the updated architecture and its estimate. Distances where
    /// the magic-state target is unreachable are skipped.
    pub fn with_optimized_distance(mut self, total_budget: f64) -> (Self, ResourceEstimate) {
        assert!(
            total_budget > 0.0 && total_budget < 1.0,
            "budget must be in (0, 1)"
        );
        for d in (9..=61u32).step_by(2) {
            self.params.distance = d;
            let Some(est) = self.try_estimate() else {
                continue;
            };
            if est.total_error <= total_budget {
                return (self, est);
            }
        }
        self.params.distance = 61;
        let est = self.estimate();
        (self, est)
    }
}

/// Physical-qubit breakdown by component (Fig. 12a).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpaceBreakdown {
    /// Runway-padded accumulator register.
    pub accumulator: f64,
    /// Multiplier register in dense idle storage.
    pub multiplier: f64,
    /// Look-up output register.
    pub lookup_output: f64,
    /// GHZ fan-out layer (dominates space during lookup).
    pub ghz_fanout: f64,
    /// Bell-bridged MAJ/UMA pipeline (active during addition).
    pub adder_pipeline: f64,
    /// Magic-state factories (dominate space during addition).
    pub factories: f64,
}

impl SpaceBreakdown {
    /// Components as (name, qubits) pairs, largest first.
    pub fn ranked(&self) -> Vec<(&'static str, f64)> {
        let mut v = vec![
            ("accumulator", self.accumulator),
            ("multiplier", self.multiplier),
            ("lookup-output", self.lookup_output),
            ("ghz-fanout", self.ghz_fanout),
            ("adder-pipeline", self.adder_pipeline),
            ("factories", self.factories),
        ];
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        v
    }
}

/// Logical-error breakdown by source (Fig. 12b).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorBreakdown {
    /// |CCZ⟩ magic-state errors.
    pub ccz: f64,
    /// Transversal-gate errors of the gadgets (fan-out dominated).
    pub gates: f64,
    /// Oblivious-runway approximation error.
    pub runways: f64,
    /// Dense-storage idling of the multiplier register.
    pub storage: f64,
}

impl ErrorBreakdown {
    /// Total failure probability (union bound).
    pub fn total(&self) -> f64 {
        (self.ccz + self.gates + self.runways + self.storage).min(1.0)
    }
}

/// The result of a resource estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceEstimate {
    /// Peak physical qubits.
    pub qubits: f64,
    /// Wall-clock seconds for one attempt.
    pub seconds: f64,
    /// Total failure probability of one attempt.
    pub total_error: f64,
    /// Code distance used.
    pub distance: u32,
    /// Magic-state factories instantiated.
    pub factories: u64,
    /// Total |CCZ⟩ states consumed.
    pub ccz_total: f64,
    /// Total windowed lookup-additions.
    pub lookup_additions: u64,
    /// Effective per-lookup duration (possibly factory-limited).
    pub lookup_seconds: f64,
    /// Effective per-addition duration (possibly factory-limited).
    pub addition_seconds: f64,
    /// Space breakdown.
    pub space: SpaceBreakdown,
    /// Error breakdown.
    pub errors: ErrorBreakdown,
}

impl ResourceEstimate {
    /// Expected runtime including retries: `t / (1 − p_fail)`.
    pub fn expected_seconds(&self) -> f64 {
        self.seconds / (1.0 - self.total_error.min(0.99))
    }

    /// Expected runtime in days.
    pub fn expected_days(&self) -> f64 {
        self.expected_seconds() / 86_400.0
    }

    /// The space–time cost (expected).
    pub fn space_time(&self) -> SpaceTime {
        SpaceTime::new(self.qubits, self.expected_seconds())
    }
}

impl fmt::Display for ResourceEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1}M qubits, {:.2} days (d = {}, {} factories, {:.2e} CCZ, p_fail {:.1}%)",
            self.qubits / 1e6,
            self.expected_days(),
            self.distance,
            self.factories,
            self.ccz_total,
            self.total_error * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_qubits_and_days() {
        // Abstract: "2048-bit RSA factoring can be executed with 19 million
        // qubits in 5.6 days".
        let est = TransversalArchitecture::paper().estimate();
        let mq = est.qubits / 1e6;
        let days = est.expected_days();
        assert!((15.0..24.0).contains(&mq), "qubits = {mq}M");
        assert!((4.5..7.0).contains(&days), "days = {days}");
    }

    #[test]
    fn paper_op_times_survive_assembly() {
        let est = TransversalArchitecture::paper().estimate();
        assert!(
            (est.lookup_seconds - 0.17).abs() < 0.03,
            "{}",
            est.lookup_seconds
        );
        assert!(
            (est.addition_seconds - 0.28).abs() < 0.03,
            "{}",
            est.addition_seconds
        );
    }

    #[test]
    fn ccz_total_about_3e9() {
        let est = TransversalArchitecture::paper().estimate();
        assert!(
            (2.5e9..3.5e9).contains(&est.ccz_total),
            "CCZ total = {:.3e}",
            est.ccz_total
        );
    }

    #[test]
    fn factories_within_table2_cap() {
        let est = TransversalArchitecture::paper().estimate();
        assert!(est.factories <= 192);
        assert!(est.factories >= 64, "factories = {}", est.factories);
    }

    #[test]
    fn error_budget_respected() {
        let est = TransversalArchitecture::paper().estimate();
        assert!(est.total_error < 0.10, "p_fail = {}", est.total_error);
        assert!(est.errors.ccz <= CCZ_BUDGET * 1.01);
    }

    #[test]
    fn breakdown_sums_to_phases() {
        let est = TransversalArchitecture::paper().estimate();
        let s = est.space;
        let lookup_phase =
            s.accumulator + s.multiplier + s.lookup_output + s.ghz_fanout + s.factories;
        assert!(
            est.qubits >= lookup_phase,
            "peak must cover the lookup phase"
        );
        let ranked = s.ranked();
        assert_eq!(ranked.len(), 6);
        assert!(ranked[0].1 >= ranked[5].1);
    }

    #[test]
    fn distance_selection_picks_27ish() {
        let (arch, est) =
            TransversalArchitecture::paper().with_optimized_distance(DEFAULT_TOTAL_BUDGET);
        assert!(
            (25..=29).contains(&arch.params.distance),
            "d = {}",
            arch.params.distance
        );
        assert!(est.total_error <= DEFAULT_TOTAL_BUDGET);
    }

    #[test]
    fn calibrated_with_paper_model_recovers_headline() {
        // Calibrating with the paper's own parameters must land on the
        // paper's optimized operating point.
        let (arch, est) = TransversalArchitecture::calibrated(ErrorModelParams::paper());
        assert_eq!(arch.error.p_phys, 1e-3);
        assert!(
            (25..=29).contains(&arch.params.distance),
            "d = {}",
            arch.params.distance
        );
        assert!(est.total_error <= DEFAULT_TOTAL_BUDGET);
        assert!(est.qubits < 25e6, "qubits = {}", est.qubits);
        assert!(est.expected_days() < 7.0, "days = {}", est.expected_days());
    }

    #[test]
    fn calibrated_reanchors_sweep_level_params_at_hardware_noise() {
        // A fit from an elevated-noise sweep: p_phys = 4e-3, Lambda = 2.4
        // there, so p_thres = 9.6e-3 — close to the paper's 1% but earned
        // from simulation. At hardware 1e-3 that is Lambda = 9.6.
        let sweep_fit = ErrorModelParams {
            c: 0.1,
            p_phys: 4e-3,
            p_thres: 9.6e-3,
            alpha: 0.4,
        };
        let (arch, est) = TransversalArchitecture::calibrated(sweep_fit);
        assert_eq!(arch.error.p_phys, 1e-3);
        assert_eq!(arch.error.p_thres, 9.6e-3);
        assert!((arch.error.lambda() - 9.6).abs() < 1e-12);
        assert!(est.total_error <= DEFAULT_TOTAL_BUDGET);
        // A slightly weaker model than the paper's (Λ 9.6 < 10, α 0.4 >
        // 1/6) costs a somewhat larger distance, not an explosion.
        let paper_d = TransversalArchitecture::paper()
            .with_optimized_distance(DEFAULT_TOTAL_BUDGET)
            .0
            .params
            .distance;
        assert!(
            arch.params.distance >= paper_d && arch.params.distance <= paper_d + 6,
            "d = {} vs paper {paper_d}",
            arch.params.distance
        );
    }

    #[test]
    #[should_panic(expected = "must exceed the hardware")]
    fn calibrated_rejects_threshold_below_hardware_noise() {
        // Lambda 2.4 fitted at p = 4e-3 but never re-anchored would put
        // p_thres = 9.6e-3... a fit claiming p_thres below the hardware
        // rate (e.g. from an above-threshold sweep) must be refused.
        let bad = ErrorModelParams {
            c: 0.1,
            p_phys: 5e-4,
            p_thres: 9e-4,
            alpha: 0.3,
        };
        let _ = TransversalArchitecture::calibrated(bad);
    }

    #[test]
    fn qldpc_storage_saves_space() {
        let base = TransversalArchitecture::paper().estimate();
        let mut arch = TransversalArchitecture::paper();
        arch.qldpc_storage_compression = Some(10.0);
        let packed = arch.estimate();
        assert!(packed.qubits < base.qubits);
        // §IV.3.4: storage is a minority of the footprint, so the saving is
        // modest (the paper estimates ~20% from a larger storage share; our
        // accumulator/lookup registers stay in surface code).
        let saving = 1.0 - packed.qubits / base.qubits;
        assert!((0.005..0.35).contains(&saving), "saving = {saving}");
    }

    #[test]
    fn fewer_factories_stretch_time() {
        let mut arch = TransversalArchitecture::paper();
        arch.params.max_factories = 32;
        let constrained = arch.estimate();
        let free = TransversalArchitecture::paper().estimate();
        assert!(constrained.seconds > free.seconds);
        assert!(constrained.qubits < free.qubits);
    }

    #[test]
    fn smaller_instance_is_cheaper() {
        let mut arch = TransversalArchitecture::paper();
        arch.instance = FactoringInstance::new(1024);
        arch.params.r_sep = 96;
        let small = arch.estimate();
        let big = TransversalArchitecture::paper().estimate();
        assert!(small.qubits < big.qubits);
        assert!(small.seconds < big.seconds);
    }

    #[test]
    fn display_mentions_days() {
        let est = TransversalArchitecture::paper().estimate();
        assert!(est.to_string().contains("days"));
    }
}
