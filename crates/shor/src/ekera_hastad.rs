//! Ekerå–Håstad factoring instances and windowed-arithmetic counts
//! (paper §III.2, Fig. 5).
//!
//! The Ekerå–Håstad variant [74, 75] factors an RSA integer by computing a
//! short discrete logarithm, shortening the exponent to about `1.5 n` bits
//! with near-unity classical post-processing success. Modular exponentiation
//! is compiled with windowed arithmetic [65]: exponent windows of `w_exp`
//! bits and multiplication windows of `w_mul` bits turn each modular
//! multiplication into table look-ups plus accumulator additions. Each
//! multiplication appears twice (compute and uncompute), giving
//!
//! ```text
//! lookup_additions = 2 · ⌈n_e/w_exp⌉ · ⌈n/w_mul⌉
//! ```
//!
//! — about 1.05×10⁶ for 2048-bit factoring at the paper's Table II windows,
//! matching its quoted ≈1.07×10⁶.

use std::fmt;

/// Extra exponent padding bits in the Ekerå–Håstad exponent length.
pub const EXPONENT_PADDING: u32 = 10;

/// An RSA factoring instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FactoringInstance {
    n_bits: u32,
}

impl FactoringInstance {
    /// A factoring instance for an `n_bits` RSA modulus.
    ///
    /// # Panics
    ///
    /// Panics if `n_bits < 16` (not a meaningful RSA instance).
    pub fn new(n_bits: u32) -> Self {
        assert!(n_bits >= 16, "RSA modulus must be at least 16 bits");
        Self { n_bits }
    }

    /// The paper's benchmark: RSA-2048.
    pub fn rsa2048() -> Self {
        Self::new(2048)
    }

    /// Modulus width in bits.
    pub fn n_bits(&self) -> u32 {
        self.n_bits
    }

    /// Ekerå–Håstad exponent length: `1.5 n` plus padding.
    pub fn exponent_bits(&self) -> u32 {
        self.n_bits + self.n_bits / 2 + EXPONENT_PADDING
    }
}

impl fmt::Display for FactoringInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RSA-{}", self.n_bits)
    }
}

/// Algorithm-level parameters of the windowed compilation (Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlgorithmParams {
    /// Exponent window size `w_exp` (Table II: 3).
    pub w_exp: u32,
    /// Multiplication window size `w_mul` (Table II: 4).
    pub w_mul: u32,
    /// Runway separation `r_sep` (Table II: 96).
    pub r_sep: u32,
    /// Runway padding `r_pad` (Table II: 43).
    pub r_pad: u32,
    /// Code distance (Table II: 27).
    pub distance: u32,
    /// Maximum number of magic-state factories (Table II: 192).
    pub max_factories: u32,
}

impl AlgorithmParams {
    /// The paper's Table II parameter choice for 2048-bit factoring.
    pub fn paper_table2() -> Self {
        Self {
            w_exp: 3,
            w_mul: 4,
            r_sep: 96,
            r_pad: 43,
            distance: 27,
            max_factories: 192,
        }
    }

    /// The Gidney–Ekerå parameter choice quoted in Table II for comparison.
    pub fn gidney_ekera_table2() -> Self {
        Self {
            w_exp: 5,
            w_mul: 5,
            r_sep: 1024,
            r_pad: 43,
            distance: 27,
            max_factories: 28,
        }
    }

    /// Validates the parameters for `instance`.
    ///
    /// # Panics
    ///
    /// Panics on zero windows, zero runway separation or `distance < 3`.
    pub fn validate(&self, instance: &FactoringInstance) {
        assert!(self.w_exp >= 1, "exponent window must be at least 1");
        assert!(self.w_mul >= 1, "multiplication window must be at least 1");
        assert!(self.r_sep >= 1, "runway separation must be at least 1");
        assert!(
            self.r_sep <= instance.n_bits(),
            "runway separation exceeds the register width"
        );
        assert!(self.distance >= 3, "distance must be at least 3");
        assert!(self.max_factories >= 1, "need at least one factory");
    }
}

/// Windowed-arithmetic operation counts for an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperationCounts {
    /// Total windowed lookup-additions.
    pub lookup_additions: u64,
    /// Exponent windows processed (one controlled multiply each... times two
    /// for compute/uncompute).
    pub exponent_windows: u64,
    /// Multiplication windows per multiplication.
    pub multiplication_windows: u64,
}

/// Computes the windowed-arithmetic counts for `instance` under `params`.
pub fn operation_counts(instance: &FactoringInstance, params: &AlgorithmParams) -> OperationCounts {
    params.validate(instance);
    let exp_windows = u64::from(instance.exponent_bits().div_ceil(params.w_exp));
    let mul_windows = u64::from(instance.n_bits().div_ceil(params.w_mul));
    OperationCounts {
        lookup_additions: 2 * exp_windows * mul_windows,
        exponent_windows: exp_windows,
        multiplication_windows: mul_windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rsa2048_exponent_length() {
        let inst = FactoringInstance::rsa2048();
        assert_eq!(inst.n_bits(), 2048);
        assert_eq!(inst.exponent_bits(), 2048 + 1024 + EXPONENT_PADDING);
    }

    #[test]
    fn paper_lookup_addition_count() {
        // §IV.2: "around 1.07e6 lookup-additions".
        let counts = operation_counts(
            &FactoringInstance::rsa2048(),
            &AlgorithmParams::paper_table2(),
        );
        let la = counts.lookup_additions;
        assert!(
            (1.0e6..1.15e6).contains(&(la as f64)),
            "lookup-additions = {la}"
        );
    }

    #[test]
    fn table2_values() {
        let p = AlgorithmParams::paper_table2();
        assert_eq!((p.w_exp, p.w_mul, p.r_sep, p.r_pad), (3, 4, 96, 43));
        assert_eq!(p.distance, 27);
        assert_eq!(p.max_factories, 192);
        let ge = AlgorithmParams::gidney_ekera_table2();
        assert_eq!((ge.w_exp, ge.w_mul, ge.r_sep), (5, 5, 1024));
    }

    #[test]
    #[should_panic(expected = "at least 16")]
    fn rejects_toy_instance() {
        let _ = FactoringInstance::new(8);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_oversized_runway() {
        let mut p = AlgorithmParams::paper_table2();
        p.r_sep = 4096;
        p.validate(&FactoringInstance::rsa2048());
    }

    proptest! {
        /// Larger windows always reduce the lookup-addition count.
        #[test]
        fn windows_reduce_counts(n_k in 4u32..64, w in 1u32..8) {
            let inst = FactoringInstance::new(n_k * 32);
            let mut p = AlgorithmParams::paper_table2();
            p.r_sep = 32;
            p.w_exp = w;
            p.w_mul = w;
            let a = operation_counts(&inst, &p);
            p.w_exp = w + 1;
            p.w_mul = w + 1;
            let b = operation_counts(&inst, &p);
            prop_assert!(b.lookup_additions <= a.lookup_additions);
        }

        /// Counts scale like n² for fixed windows.
        #[test]
        fn quadratic_scaling(k in 2u32..16) {
            let p = AlgorithmParams {
                r_sep: 32,
                ..AlgorithmParams::paper_table2()
            };
            let small = operation_counts(&FactoringInstance::new(k * 64), &p);
            let big = operation_counts(&FactoringInstance::new(2 * k * 64), &p);
            let ratio = big.lookup_additions as f64 / small.lookup_additions as f64;
            prop_assert!((ratio - 4.0).abs() < 0.3, "ratio = {ratio}");
        }
    }
}
