//! Sensitivity sweeps (paper §IV.3, Figs. 13 and 14).
//!
//! Every sweep re-runs the full estimator with one knob turned: the decoding
//! factor α (13a), the coherence time (13b), the atom acceleration (14a,b),
//! the reaction time (14c), a hard qubit cap (14d), and the dense-qLDPC
//! storage extension (§IV.3.4). Distances are re-optimized against the
//! default failure budget for every point, exactly as the paper re-optimizes
//! per configuration.

use crate::architecture::{ResourceEstimate, TransversalArchitecture, DEFAULT_TOTAL_BUDGET};
use raa_core::SpaceTime;

/// One sweep sample: the knob value and the resulting estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub value: f64,
    /// The re-optimized estimate at that value.
    pub estimate: ResourceEstimate,
}

impl SweepPoint {
    /// The space–time cost at this point.
    pub fn space_time(&self) -> SpaceTime {
        self.estimate.space_time()
    }
}

fn reoptimized(arch: TransversalArchitecture) -> ResourceEstimate {
    arch.with_optimized_distance(DEFAULT_TOTAL_BUDGET).1
}

/// Fig. 13(a): sweep the decoding factor α.
pub fn sweep_alpha(base: &TransversalArchitecture, alphas: &[f64]) -> Vec<SweepPoint> {
    alphas
        .iter()
        .map(|&alpha| {
            let mut arch = *base;
            arch.error = arch.error.with_alpha(alpha);
            SweepPoint {
                value: alpha,
                estimate: reoptimized(arch),
            }
        })
        .collect()
}

/// Fig. 13(b): sweep the qubit coherence time (seconds).
pub fn sweep_coherence(base: &TransversalArchitecture, t_cohs: &[f64]) -> Vec<SweepPoint> {
    t_cohs
        .iter()
        .map(|&t| {
            let mut arch = *base;
            arch.physical = arch.physical.with_coherence_time(t);
            SweepPoint {
                value: t,
                estimate: reoptimized(arch),
            }
        })
        .collect()
}

/// Fig. 14(a,b): sweep the atom acceleration as a multiple of Table I's value.
/// Returns (scale, estimate, QEC cycle seconds).
pub fn sweep_acceleration(
    base: &TransversalArchitecture,
    scales: &[f64],
) -> Vec<(SweepPoint, f64)> {
    scales
        .iter()
        .map(|&s| {
            let mut arch = *base;
            arch.physical = arch.physical.with_acceleration_scaled(s);
            let est = reoptimized(arch);
            let cycle = arch.context().cycle().cycle_time();
            (
                SweepPoint {
                    value: s,
                    estimate: est,
                },
                cycle,
            )
        })
        .collect()
}

/// Fig. 14(c): sweep the reaction time (seconds). Measurement is shortened
/// alongside when the requested reaction time is below the Table I readout.
pub fn sweep_reaction(base: &TransversalArchitecture, reactions: &[f64]) -> Vec<SweepPoint> {
    reactions
        .iter()
        .map(|&tr| {
            assert!(tr > 0.0, "reaction time must be positive");
            let mut arch = *base;
            let measure = arch.physical.measure_time.min(tr / 2.0);
            let decode = tr - measure;
            arch.physical = arch.physical.with_readout(measure, decode);
            SweepPoint {
                value: tr,
                estimate: reoptimized(arch),
            }
        })
        .collect()
}

/// Fig. 14(d): the qubit/run-time trade-off. For each qubit cap, searches the
/// runway separation and factory count fitting under the cap and reports the
/// fastest configuration.
pub fn sweep_qubit_cap(base: &TransversalArchitecture, caps: &[f64]) -> Vec<SweepPoint> {
    const RSEP_GRID: [u32; 10] = [32, 48, 64, 96, 128, 192, 256, 384, 512, 1024];
    const FACTORY_GRID: [u32; 9] = [32, 64, 96, 128, 192, 256, 384, 512, 768];
    caps.iter()
        .map(|&cap| {
            let mut best: Option<ResourceEstimate> = None;
            for &r_sep in &RSEP_GRID {
                if r_sep > base.instance.n_bits() {
                    continue;
                }
                for &factories in &FACTORY_GRID {
                    let mut arch = *base;
                    arch.params.r_sep = r_sep;
                    arch.params.max_factories = factories;
                    let est = reoptimized(arch);
                    if est.qubits <= cap
                        && best
                            .as_ref()
                            .is_none_or(|b| est.expected_seconds() < b.expected_seconds())
                    {
                        best = Some(est);
                    }
                }
            }
            SweepPoint {
                value: cap,
                estimate: best.unwrap_or_else(|| reoptimized(*base)),
            }
        })
        .collect()
}

/// §IV.3.4: dense qLDPC idle storage at the given compression factors.
pub fn sweep_qldpc_storage(
    base: &TransversalArchitecture,
    compressions: &[f64],
) -> Vec<SweepPoint> {
    compressions
        .iter()
        .map(|&c| {
            let mut arch = *base;
            arch.qldpc_storage_compression = if c > 1.0 { Some(c) } else { None };
            SweepPoint {
                value: c,
                estimate: reoptimized(arch),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> TransversalArchitecture {
        TransversalArchitecture::paper()
    }

    #[test]
    fn alpha_sensitivity_is_mild() {
        // Fig. 13(a): threshold dropping 0.86% → 0.6% (α 1/6 → ~2/3 at x=1)
        // costs no more than ~50% extra volume.
        let pts = sweep_alpha(&base(), &[1.0 / 6.0, 2.0 / 3.0]);
        let v0 = pts[0].space_time().volume();
        let v1 = pts[1].space_time().volume();
        let increase = v1 / v0 - 1.0;
        assert!(
            (0.0..0.6).contains(&increase),
            "volume increase = {increase}"
        );
    }

    #[test]
    fn coherence_knee_below_one_second() {
        // Fig. 13(b): volume rises slowly until T_coh < 1 s, then accelerates.
        let pts = sweep_coherence(&base(), &[100.0, 10.0, 1.0, 0.2]);
        let v = |i: usize| pts[i].space_time().volume();
        assert!(v(1) / v(0) < 1.5, "10 s vs 100 s: {}", v(1) / v(0));
        assert!(
            v(3) / v(1) > v(1) / v(0),
            "degradation must accelerate at short coherence"
        );
    }

    #[test]
    fn faster_acceleration_helps() {
        let pts = sweep_acceleration(&base(), &[0.3, 1.0, 3.0]);
        // QEC cycle shrinks monotonically with acceleration.
        assert!(pts[0].1 > pts[1].1);
        assert!(pts[1].1 > pts[2].1);
        // And volume improves.
        assert!(pts[2].0.space_time().volume() <= pts[0].0.space_time().volume());
    }

    #[test]
    fn reaction_time_floor_from_fanout() {
        // Fig. 14(c): gains flatten once the CNOT fan-out dominates.
        let pts = sweep_reaction(&base(), &[4e-3, 1e-3, 0.25e-3]);
        let t = |i: usize| pts[i].estimate.expected_seconds();
        assert!(t(1) < t(0), "shorter reaction must help initially");
        let big_gain = t(0) / t(1);
        let small_gain = t(1) / t(2);
        assert!(
            small_gain < big_gain,
            "gains must flatten: {big_gain} then {small_gain}"
        );
    }

    #[test]
    fn qubit_cap_tradeoff() {
        // Fig. 14(d): tighter caps mean longer runtimes; generous caps
        // approach the reaction-limited floor.
        let pts = sweep_qubit_cap(&base(), &[14e6, 19e6, 40e6]);
        let t = |i: usize| pts[i].estimate.expected_seconds();
        assert!(pts[0].estimate.qubits <= 14e6 * 1.001);
        assert!(t(0) >= t(1));
        assert!(t(1) >= t(2));
    }

    #[test]
    fn qldpc_estimate_saves_space() {
        let pts = sweep_qldpc_storage(&base(), &[1.0, 10.0]);
        assert!(pts[1].estimate.qubits < pts[0].estimate.qubits);
    }
}
