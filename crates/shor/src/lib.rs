//! End-to-end resource estimation of Shor's algorithm on the transversal
//! atom-array architecture (paper §III.2, §IV), with lattice-surgery
//! baselines for comparison.
//!
//! * [`ekera_hastad`] — the Ekerå–Håstad factoring variant and windowed
//!   arithmetic operation counts (≈1.05×10⁶ lookup-additions at Table II
//!   windows for RSA-2048);
//! * [`architecture`] — the full assembly: registers + runways + GHZ layer +
//!   adder pipeline + just-enough 8T-to-CCZ factories, with space and error
//!   breakdowns (Fig. 12) and the headline estimate (**≈19 M qubits,
//!   ≈5.6 days**);
//! * [`optimizer`] — the Table II parameter search;
//! * [`sensitivity`] — the Fig. 13/14 sweeps (α, coherence, acceleration,
//!   reaction time, qubit caps, dense qLDPC storage);
//! * [`baselines`] — the Gidney–Ekerå [8] cost model (calibrated to their
//!   20 M qubits / ≈8 h at 1 µs cycles, rescaled to 900 µs lattice surgery)
//!   and a Beverland-et-al.-style [9] point, regenerating Fig. 2.
//!
//! # Example
//!
//! ```
//! use raa_shor::architecture::TransversalArchitecture;
//! use raa_shor::baselines::GidneyEkeraModel;
//!
//! let ours = TransversalArchitecture::paper().estimate();
//! let ge = GidneyEkeraModel::atom_array(1e-3);
//! // The paper's ≈50× run-time advantage at no space increase (Fig. 2).
//! let speedup = ge.runtime_seconds() / ours.expected_seconds();
//! assert!(speedup > 10.0);
//! assert!(ours.qubits <= ge.qubits() * 1.25);
//! ```

#![forbid(unsafe_code)]

pub mod architecture;
pub mod baselines;
pub mod ekera_hastad;
pub mod optimizer;
pub mod sensitivity;

pub use architecture::{
    ErrorBreakdown, ResourceEstimate, SpaceBreakdown, TransversalArchitecture, CCZ_BUDGET,
    DEFAULT_TOTAL_BUDGET,
};
pub use baselines::{BeverlandModel, GidneyEkeraModel};
pub use ekera_hastad::{operation_counts, AlgorithmParams, FactoringInstance, OperationCounts};
pub use optimizer::{optimize, optimize_paper_instance, OptimizationResult, SearchSpace};
pub use sensitivity::SweepPoint;
