//! Lattice-surgery baselines for Fig. 2: the Gidney–Ekerå cost model [8]
//! rescaled to neutral-atom timescales, and the Beverland et al. estimate [9].
//!
//! Per the substitution rule, we reimplement the *published cost model* of
//! Gidney–Ekerå ("How to factor 2048 bit RSA integers in 8 hours using 20
//! million noisy qubits") rather than running their Python attachment: the
//! same windowed-arithmetic Toffoli counts as our compilation (their windows
//! w_exp = w_mul = 5, r_sep = 1024 give ≈1.6×10⁹ temporary-AND Toffolis here;
//! their published ≈2.7×10⁹ additionally counts modular-reduction work), a
//! lattice-surgery execution model where each Toffoli layer costs one
//! code-distance worth of QEC cycles (or the reaction time, whichever is
//! longer), and a qubit count calibrated to their 20 M at d = 27. The model
//! reproduces their 2048-bit headline (≈8 h at a 1 µs cycle) and is then
//! evaluated at the paper's 900 µs lattice-surgery cycle for the blue points
//! of Fig. 2.

use crate::ekera_hastad::{operation_counts, AlgorithmParams, FactoringInstance};
use raa_core::SpaceTime;
use raa_gadgets::{CuccaroAdder, LookupTable};

/// Calibration constant: overlap/pipelining factor of the Gidney–Ekerå
/// schedule, set so the model reproduces their 7.4 h at a 1 µs cycle.
const GE_TIME_CALIBRATION: f64 = 0.60;

/// Gidney–Ekerå 2019 reference qubit count for RSA-2048 at d = 27.
const GE_QUBITS_2048: f64 = 20e6;

/// The Gidney–Ekerå lattice-surgery cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GidneyEkeraModel {
    /// Instance being factored.
    pub instance: FactoringInstance,
    /// Surface-code QEC cycle time in seconds (1 µs superconducting;
    /// 900 µs for atom-array lattice surgery, §IV.2).
    pub cycle_time: f64,
    /// Control-system reaction time in seconds.
    pub reaction_time: f64,
    /// Code distance (theirs: 27).
    pub distance: u32,
}

impl GidneyEkeraModel {
    /// Their headline configuration: RSA-2048, 1 µs cycles, 10 µs reaction.
    pub fn superconducting_reference() -> Self {
        Self {
            instance: FactoringInstance::rsa2048(),
            cycle_time: 1e-6,
            reaction_time: 10e-6,
            distance: 27,
        }
    }

    /// The paper's rescaling to atom-array lattice surgery: 900 µs cycles
    /// (ancilla readout cannot be pipelined without extra qubits, §IV.2).
    pub fn atom_array(reaction_time: f64) -> Self {
        Self {
            instance: FactoringInstance::rsa2048(),
            cycle_time: 900e-6,
            reaction_time,
            distance: 27,
        }
    }

    /// Their algorithm parameters (Table II right column).
    pub fn algorithm_params(&self) -> AlgorithmParams {
        AlgorithmParams {
            distance: self.distance,
            ..AlgorithmParams::gidney_ekera_table2()
        }
    }

    /// Total Toffoli count of their windowed compilation (≈ 2.7×10⁹ for
    /// RSA-2048 with 5/5 windows and 1024-bit runways).
    pub fn toffoli_count(&self) -> f64 {
        let params = self.algorithm_params();
        let counts = operation_counts(&self.instance, &params);
        let adder = CuccaroAdder::new(self.instance.n_bits(), params.r_sep, params.r_pad);
        let lookup = LookupTable::new(params.w_exp + params.w_mul, 1);
        counts.lookup_additions as f64 * (adder.toffoli_count() + lookup.ccz_count()) as f64
    }

    /// Sequential depth in Toffoli layers: each lookup-addition contributes
    /// its table scan plus its (runway-segmented) carry chain.
    pub fn toffoli_depth(&self) -> f64 {
        let params = self.algorithm_params();
        let counts = operation_counts(&self.instance, &params);
        let per_gadget = f64::from(2 * (params.r_sep + params.r_pad))
            + (1u64 << (params.w_exp + params.w_mul)) as f64;
        counts.lookup_additions as f64 * per_gadget
    }

    /// Time per sequential Toffoli layer: a lattice-surgery logical operation
    /// takes `d` QEC cycles, and cannot beat the reaction time.
    pub fn layer_time(&self) -> f64 {
        (f64::from(self.distance) * self.cycle_time).max(self.reaction_time)
    }

    /// Estimated runtime in seconds.
    pub fn runtime_seconds(&self) -> f64 {
        GE_TIME_CALIBRATION * self.toffoli_depth() * self.layer_time()
    }

    /// Estimated physical qubits (their 20 M at RSA-2048/d = 27, scaled with
    /// register width and d²).
    pub fn qubits(&self) -> f64 {
        let n_scale = f64::from(self.instance.n_bits()) / 2048.0;
        let d_scale = (f64::from(self.distance) / 27.0).powi(2);
        GE_QUBITS_2048 * n_scale * d_scale
    }

    /// The space–time point for Fig. 2.
    pub fn space_time(&self) -> SpaceTime {
        SpaceTime::new(self.qubits(), self.runtime_seconds())
    }
}

/// The Beverland et al. [9] style estimate: formula-based lattice-surgery
/// accounting at 100 µs gate/measurement times with the reaction time
/// neglected, which the paper cites as yielding a *larger* resource estimate
/// (year-scale runtimes on atomic platforms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeverlandModel {
    /// Instance being factored.
    pub instance: FactoringInstance,
    /// Physical gate/measurement time (theirs: 100 µs).
    pub op_time: f64,
    /// Code distance.
    pub distance: u32,
}

impl BeverlandModel {
    /// Their atomic-platform reference point.
    pub fn atomic_reference() -> Self {
        Self {
            instance: FactoringInstance::rsa2048(),
            op_time: 100e-6,
            distance: 27,
        }
    }

    /// Logical cycle: a syndrome-extraction round is ~6 physical operation
    /// steps; a lattice-surgery logical operation is d rounds.
    pub fn logical_op_time(&self) -> f64 {
        6.0 * self.op_time * f64::from(self.distance)
    }

    /// Runtime: the same sequential Toffoli depth as the windowed
    /// compilation, one lattice-surgery logical operation per layer, with a
    /// ~3× smaller degree of parallelism than the aggressively-overlapped
    /// Gidney–Ekerå schedule.
    pub fn runtime_seconds(&self) -> f64 {
        let ge = GidneyEkeraModel {
            instance: self.instance,
            cycle_time: 6.0 * self.op_time,
            reaction_time: 0.0,
            distance: self.distance,
        };
        3.0 * GE_TIME_CALIBRATION * ge.toffoli_depth() * self.logical_op_time()
    }

    /// Physical qubits (their published estimates land near 25 M).
    pub fn qubits(&self) -> f64 {
        25e6 * f64::from(self.instance.n_bits()) / 2048.0
            * (f64::from(self.distance) / 27.0).powi(2)
    }

    /// The space–time point for Fig. 2.
    pub fn space_time(&self) -> SpaceTime {
        SpaceTime::new(self.qubits(), self.runtime_seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ge19_toffoli_count_matches_published_scale() {
        // GE19 report ≈ 2.7e9 Toffolis for 2048-bit factoring at 5/5 windows;
        // our count (1.6e9) omits their modular-reduction/comparison
        // overheads, so require the same order of magnitude.
        let m = GidneyEkeraModel::superconducting_reference();
        let t = m.toffoli_count();
        assert!((1.2e9..3.5e9).contains(&t), "toffolis = {t:.3e}");
    }

    #[test]
    fn ge19_headline_8_hours_20m_qubits() {
        let m = GidneyEkeraModel::superconducting_reference();
        let hours = m.runtime_seconds() / 3600.0;
        assert!((5.0..11.0).contains(&hours), "hours = {hours}");
        assert!((m.qubits() - 20e6).abs() < 1e3);
    }

    #[test]
    fn atom_array_rescale_is_hundreds_of_days() {
        // §IV.2: at 900 µs cycles the GE19 architecture extrapolates to
        // ~50× slower than the transversal 5.6 days, i.e. ~280 days.
        let m = GidneyEkeraModel::atom_array(1e-3);
        let days = m.runtime_seconds() / 86_400.0;
        assert!((150.0..500.0).contains(&days), "days = {days}");
    }

    #[test]
    fn reaction_time_only_matters_when_longer_than_surgery() {
        let fast = GidneyEkeraModel::atom_array(1e-3);
        let slow = GidneyEkeraModel::atom_array(100e-3);
        // d·cycle = 24.3 ms: a 1 ms reaction is hidden, a 100 ms one is not.
        assert_eq!(fast.layer_time(), 27.0 * 900e-6);
        assert_eq!(slow.layer_time(), 100e-3);
        assert!(slow.runtime_seconds() > fast.runtime_seconds() * 3.0);
    }

    #[test]
    fn beverland_point_is_years_scale() {
        let m = BeverlandModel::atomic_reference();
        let days = m.runtime_seconds() / 86_400.0;
        assert!(days > 365.0, "days = {days}");
        assert!((m.qubits() - 25e6).abs() < 1e3);
    }

    #[test]
    fn volume_ordering_matches_fig2() {
        // Transversal < GE19@900us < Beverland in space-time volume.
        let ours = crate::architecture::TransversalArchitecture::paper()
            .estimate()
            .space_time()
            .volume();
        let ge = GidneyEkeraModel::atom_array(1e-3).space_time().volume();
        let bev = BeverlandModel::atomic_reference().space_time().volume();
        assert!(ours < ge, "ours {ours:.3e} vs GE {ge:.3e}");
        assert!(ge < bev, "GE {ge:.3e} vs Beverland {bev:.3e}");
        // Close to the paper's ~50x run-time gap at comparable qubits.
        let speedup = ge / ours;
        assert!((10.0..120.0).contains(&speedup), "speed-up = {speedup}");
    }
}
