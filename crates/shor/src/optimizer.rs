//! Algorithm-parameter optimization (paper §IV.2, Table II).
//!
//! Sweeps the windowed-arithmetic parameters in pairs — exponent and
//! multiplication windows, runway separation — re-optimizing the code
//! distance and the factory count for every candidate, and keeps the choice
//! minimizing expected space–time volume under the failure budget. The
//! transversal cost structure (fast Cliffords, reaction-limited arithmetic)
//! pushes the optimum towards *smaller* windows and *much shorter* runway
//! separations than the lattice-surgery compilation of Ref. [8], which is
//! exactly the Table II contrast (3/4/96 versus their 5/5/1024).

use crate::architecture::{ResourceEstimate, TransversalArchitecture, DEFAULT_TOTAL_BUDGET};

/// The search space of the parameter optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    /// Exponent window candidates.
    pub w_exp: Vec<u32>,
    /// Multiplication window candidates.
    pub w_mul: Vec<u32>,
    /// Runway separation candidates.
    pub r_sep: Vec<u32>,
    /// Factory-cap candidates.
    pub max_factories: Vec<u32>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        Self {
            w_exp: vec![2, 3, 4, 5, 6],
            w_mul: vec![2, 3, 4, 5, 6],
            r_sep: vec![48, 64, 96, 128, 192, 256, 512, 1024],
            max_factories: vec![96, 128, 192, 256],
        }
    }
}

/// Result of the optimization: the winning configuration and its estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizationResult {
    /// The optimized architecture.
    pub architecture: TransversalArchitecture,
    /// Its resource estimate.
    pub estimate: ResourceEstimate,
}

/// Searches `space` for the parameter choice minimizing expected space–time
/// volume under `budget`, starting from `base` (its instance, physics and
/// error model are kept fixed).
///
/// # Panics
///
/// Panics if the search space is empty or no candidate meets the budget.
pub fn optimize(
    base: &TransversalArchitecture,
    space: &SearchSpace,
    budget: f64,
) -> OptimizationResult {
    assert!(
        !space.w_exp.is_empty()
            && !space.w_mul.is_empty()
            && !space.r_sep.is_empty()
            && !space.max_factories.is_empty(),
        "search space must be non-empty"
    );
    let mut best: Option<OptimizationResult> = None;
    for &w_exp in &space.w_exp {
        for &w_mul in &space.w_mul {
            for &r_sep in &space.r_sep {
                if r_sep > base.instance.n_bits() {
                    continue;
                }
                for &max_factories in &space.max_factories {
                    let mut arch = *base;
                    arch.params.w_exp = w_exp;
                    arch.params.w_mul = w_mul;
                    arch.params.r_sep = r_sep;
                    arch.params.max_factories = max_factories;
                    let (arch, est) = arch.with_optimized_distance(budget);
                    if est.total_error > budget {
                        continue;
                    }
                    let vol = est.space_time().volume();
                    if best
                        .as_ref()
                        .is_none_or(|b| vol < b.estimate.space_time().volume())
                    {
                        best = Some(OptimizationResult {
                            architecture: arch,
                            estimate: est,
                        });
                    }
                }
            }
        }
    }
    best.expect("no parameter choice met the error budget")
}

/// Convenience: optimize the paper's RSA-2048 instance over the default
/// search space and budget.
pub fn optimize_paper_instance() -> OptimizationResult {
    optimize(
        &TransversalArchitecture::paper(),
        &SearchSpace::default(),
        DEFAULT_TOTAL_BUDGET,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizer_lands_near_table2() {
        let result = optimize_paper_instance();
        let p = result.architecture.params;
        // Table II: w_exp 3, w_mul 4, r_sep 96, d 27, ≤192 factories. The
        // exact cell can tie with neighbours; require the same region.
        assert!(
            (6..=8).contains(&(p.w_exp + p.w_mul)),
            "windows = {}/{}",
            p.w_exp,
            p.w_mul
        );
        assert!((48..=192).contains(&p.r_sep), "r_sep = {}", p.r_sep);
        assert!((25..=29).contains(&p.distance), "distance = {}", p.distance);
        assert!(result.estimate.factories <= 256);
    }

    #[test]
    fn optimized_volume_not_worse_than_paper_choice() {
        let paper = TransversalArchitecture::paper()
            .with_optimized_distance(DEFAULT_TOTAL_BUDGET)
            .1;
        let opt = optimize_paper_instance();
        assert!(
            opt.estimate.space_time().volume() <= paper.space_time().volume() * 1.001,
            "optimizer must not lose to the fixed Table II choice"
        );
    }

    #[test]
    fn optimum_beats_lattice_surgery_style_parameters() {
        // Evaluating the GE19-style windows/runways on the *transversal*
        // architecture must not beat the transversal-optimized choice.
        let mut ge_style = TransversalArchitecture::paper();
        ge_style.params.w_exp = 5;
        ge_style.params.w_mul = 5;
        ge_style.params.r_sep = 1024;
        let (_, ge_est) = ge_style.with_optimized_distance(DEFAULT_TOTAL_BUDGET);
        let opt = optimize_paper_instance();
        assert!(
            opt.estimate.space_time().volume() < ge_est.space_time().volume(),
            "transversal optimum {:.3e} vs GE-style parameters {:.3e}",
            opt.estimate.space_time().volume(),
            ge_est.space_time().volume()
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_space() {
        let space = SearchSpace {
            w_exp: vec![],
            ..SearchSpace::default()
        };
        let _ = optimize(&TransversalArchitecture::paper(), &space, 0.1);
    }
}
