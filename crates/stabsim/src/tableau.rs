//! Aaronson–Gottesman stabilizer tableau simulator.
//!
//! Tracks `n` destabilizer and `n` stabilizer generators with ±1 signs,
//! supporting the full Clifford gate set, resets and (possibly forced)
//! measurements. Used as the exact reference simulator: the Pauli-frame
//! sampler ([`crate::frame`]) XORs noise-induced flips against a noiseless
//! reference sample produced here.

use crate::circuit::{Circuit, OpKind};
use rand::{Rng, RngExt};

/// Outcome of a single measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasureResult {
    /// The measured bit.
    pub value: bool,
    /// Whether the outcome was random (`true`) or determined by the state.
    pub deterministic: bool,
}

/// A stabilizer state on `n` qubits in tableau form.
///
/// # Example
///
/// ```
/// use raa_stabsim::tableau::TableauSim;
///
/// let mut sim = TableauSim::new(2);
/// sim.h(0);
/// sim.cx(0, 1);                    // Bell pair
/// let a = sim.measure_forced(0, false); // collapse to |00>
/// let b = sim.measure(1, &mut rand::rng());
/// assert_eq!(a.value, b.value);    // perfectly correlated
/// assert!(b.deterministic);
/// ```
#[derive(Debug, Clone)]
pub struct TableauSim {
    n: usize,
    /// x[r * n + q]: X component of generator r at qubit q.
    /// Rows 0..n are destabilizers, n..2n are stabilizers, row 2n is scratch.
    x: Vec<bool>,
    z: Vec<bool>,
    /// Sign bit per row: true means −1.
    sign: Vec<bool>,
}

impl TableauSim {
    /// Creates the all-|0⟩ state on `n` qubits.
    pub fn new(n: usize) -> Self {
        let rows = 2 * n + 1;
        let mut sim = Self {
            n,
            x: vec![false; rows * n],
            z: vec![false; rows * n],
            sign: vec![false; rows],
        };
        for q in 0..n {
            sim.x[q * n + q] = true; // destabilizer X_q
            sim.z[(n + q) * n + q] = true; // stabilizer Z_q
        }
        sim
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    #[inline]
    fn xr(&self, r: usize, q: usize) -> bool {
        self.x[r * self.n + q]
    }

    #[inline]
    fn zr(&self, r: usize, q: usize) -> bool {
        self.z[r * self.n + q]
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        self.check(q);
        let n = self.n;
        for r in 0..2 * n {
            let i = r * n + q;
            self.sign[r] ^= self.x[i] & self.z[i];
            let (xv, zv) = (self.x[i], self.z[i]);
            self.x[i] = zv;
            self.z[i] = xv;
        }
    }

    /// Phase gate S on `q`.
    pub fn s(&mut self, q: usize) {
        self.check(q);
        let n = self.n;
        for r in 0..2 * n {
            let i = r * n + q;
            self.sign[r] ^= self.x[i] & self.z[i];
            self.z[i] ^= self.x[i];
        }
    }

    /// Inverse phase gate S† on `q` (three applications of S).
    pub fn s_dag(&mut self, q: usize) {
        self.s(q);
        self.s(q);
        self.s(q);
    }

    /// √X on `q`.
    pub fn sqrt_x(&mut self, q: usize) {
        self.h(q);
        self.s(q);
        self.h(q);
    }

    /// √X† on `q`.
    pub fn sqrt_x_dag(&mut self, q: usize) {
        self.h(q);
        self.s_dag(q);
        self.h(q);
    }

    /// Pauli X on `q` (flips signs of generators with a Z component at `q`).
    pub fn x_gate(&mut self, q: usize) {
        self.check(q);
        let n = self.n;
        for r in 0..2 * n {
            self.sign[r] ^= self.z[r * n + q];
        }
    }

    /// Pauli Z on `q`.
    pub fn z_gate(&mut self, q: usize) {
        self.check(q);
        let n = self.n;
        for r in 0..2 * n {
            self.sign[r] ^= self.x[r * n + q];
        }
    }

    /// Pauli Y on `q`.
    pub fn y_gate(&mut self, q: usize) {
        self.check(q);
        let n = self.n;
        for r in 0..2 * n {
            self.sign[r] ^= self.x[r * n + q] ^ self.z[r * n + q];
        }
    }

    /// CX with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if `c == t` or either index is out of range.
    pub fn cx(&mut self, c: usize, t: usize) {
        self.check(c);
        self.check(t);
        assert!(c != t, "CX control and target must differ");
        let n = self.n;
        for r in 0..2 * n {
            let (xc, zc) = (self.x[r * n + c], self.z[r * n + c]);
            let (xt, zt) = (self.x[r * n + t], self.z[r * n + t]);
            self.sign[r] ^= xc & zt & (xt == zc);
            self.x[r * n + t] = xt ^ xc;
            self.z[r * n + c] = zc ^ zt;
        }
    }

    /// CZ between `a` and `b`.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cx(a, b);
        self.h(b);
    }

    /// SWAP of `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.cx(a, b);
        self.cx(b, a);
        self.cx(a, b);
    }

    fn check(&self, q: usize) {
        assert!(q < self.n, "qubit {q} out of range for {} qubits", self.n);
    }

    /// Phase contribution when multiplying row `i` into row `h`
    /// (the g function of Aaronson–Gottesman), summed over qubits, plus the
    /// sign bits; returns the resulting sign bit for row `h`.
    fn rowsum_sign(&self, h: usize, i: usize) -> bool {
        let n = self.n;
        let mut phase: i32 = 2 * (self.sign[h] as i32) + 2 * (self.sign[i] as i32);
        for q in 0..n {
            let (x1, z1) = (self.xr(i, q) as i32, self.zr(i, q) as i32);
            let (x2, z2) = (self.xr(h, q) as i32, self.zr(h, q) as i32);
            let g = match (x1, z1) {
                (0, 0) => 0,
                (1, 1) => z2 - x2,
                (1, 0) => z2 * (2 * x2 - 1),
                (0, 1) => x2 * (1 - 2 * z2),
                _ => unreachable!(),
            };
            phase += g;
        }
        // For pairs of commuting rows the phase is 0 or 2 (mod 4). Products
        // involving destabilizer rows may be odd (the factors anticommute);
        // destabilizer signs carry no meaning, so rounding is harmless.
        phase.rem_euclid(4) / 2 == 1
    }

    /// Row `h` ← row `i` · row `h` (Paulis multiply, signs via `rowsum_sign`).
    fn rowsum(&mut self, h: usize, i: usize) {
        let n = self.n;
        self.sign[h] = self.rowsum_sign(h, i);
        for q in 0..n {
            self.x[h * n + q] ^= self.x[i * n + q];
            self.z[h * n + q] ^= self.z[i * n + q];
        }
    }

    /// Measures qubit `q` in the Z basis with outcomes drawn from `rng`.
    pub fn measure<R: Rng>(&mut self, q: usize, rng: &mut R) -> MeasureResult {
        let outcome = rng.random::<bool>();
        self.measure_impl(q, Some(outcome))
    }

    /// Measures qubit `q`, forcing random outcomes to `forced`.
    ///
    /// The caller asserts the outcome: when the measurement is deterministic,
    /// debug builds check that `forced` matches the state's value and panic on
    /// a mismatch (a mismatch means the caller's expectation about the state
    /// is wrong — historically the forced value was silently ignored, which
    /// hid such bugs). Use [`TableauSim::measure_desired`] to express "take
    /// this value only if the outcome is random".
    pub fn measure_forced(&mut self, q: usize, forced: bool) -> MeasureResult {
        let m = self.measure_impl(q, Some(forced));
        debug_assert!(
            !m.deterministic || m.value == forced,
            "measure_forced: qubit {q} is deterministically {}, caller forced {forced}",
            m.value
        );
        m
    }

    /// Measures qubit `q`, taking `desired` as the outcome when (and only
    /// when) the measurement is random; deterministic outcomes keep the
    /// state's value. The non-asserting sibling of
    /// [`TableauSim::measure_forced`].
    pub fn measure_desired(&mut self, q: usize, desired: bool) -> MeasureResult {
        self.measure_impl(q, Some(desired))
    }

    fn measure_impl(&mut self, q: usize, random_value: Option<bool>) -> MeasureResult {
        self.check(q);
        let n = self.n;
        // A stabilizer row with X at q anticommutes with Z_q: outcome random.
        let p = (n..2 * n).find(|&r| self.xr(r, q));
        match p {
            Some(p) => {
                let value = random_value.unwrap_or(false);
                let rows: Vec<usize> = (0..2 * n).filter(|&r| r != p && self.xr(r, q)).collect();
                for r in rows {
                    self.rowsum(r, p);
                }
                // Destabilizer row (p - n) becomes the old stabilizer row p.
                let (dst, src) = (p - n, p);
                for qq in 0..n {
                    self.x[dst * n + qq] = self.x[src * n + qq];
                    self.z[dst * n + qq] = self.z[src * n + qq];
                }
                self.sign[dst] = self.sign[src];
                // Row p becomes ±Z_q.
                for qq in 0..n {
                    self.x[p * n + qq] = false;
                    self.z[p * n + qq] = false;
                }
                self.z[p * n + q] = true;
                self.sign[p] = value;
                MeasureResult {
                    value,
                    deterministic: false,
                }
            }
            None => {
                // Deterministic: accumulate into the scratch row 2n.
                let scratch = 2 * n;
                for qq in 0..n {
                    self.x[scratch * n + qq] = false;
                    self.z[scratch * n + qq] = false;
                }
                self.sign[scratch] = false;
                for r in 0..n {
                    if self.xr(r, q) {
                        self.rowsum(scratch, r + n);
                    }
                }
                MeasureResult {
                    value: self.sign[scratch],
                    deterministic: true,
                }
            }
        }
    }

    /// Measures qubit `q` in the X basis.
    pub fn measure_x<R: Rng>(&mut self, q: usize, rng: &mut R) -> MeasureResult {
        self.h(q);
        let m = self.measure(q, rng);
        self.h(q);
        m
    }

    /// Resets qubit `q` to |0⟩.
    pub fn reset(&mut self, q: usize) {
        let m = self.measure_desired(q, false);
        if m.value {
            self.x_gate(q);
        }
    }

    /// Resets qubit `q` to |+⟩.
    pub fn reset_x(&mut self, q: usize) {
        self.reset(q);
        self.h(q);
    }

    /// Expectation structure of Z on `q`: `Some(v)` if ⟨Z⟩ = ±1 with `v` the
    /// measured bit, `None` if the outcome would be random.
    pub fn peek_z(&self, q: usize) -> Option<bool> {
        let mut probe = self.clone();
        let m = probe.measure_desired(q, false);
        m.deterministic.then_some(m.value)
    }

    /// Runs `circuit` without noise, forcing every random measurement to 0.
    ///
    /// Returns the reference measurement record used by the frame sampler.
    ///
    /// # Panics
    ///
    /// Panics if the circuit touches more qubits than this simulator holds.
    pub fn reference_sample(circuit: &Circuit) -> Vec<bool> {
        let mut sim = Self::new(circuit.num_qubits() as usize);
        let mut record = Vec::with_capacity(circuit.num_measurements());
        for op in circuit.ops() {
            sim.apply_deterministic(op, &mut record);
        }
        record
    }

    /// Runs `circuit` with noise channels sampled from `rng`.
    ///
    /// Returns the sampled measurement record. This is the slow exact path,
    /// used to cross-validate the Pauli-frame sampler.
    pub fn sample<R: Rng>(circuit: &Circuit, rng: &mut R) -> Vec<bool> {
        let mut sim = Self::new(circuit.num_qubits() as usize);
        let mut record = Vec::with_capacity(circuit.num_measurements());
        for op in circuit.ops() {
            sim.apply_sampled(op, &mut record, rng);
        }
        record
    }

    fn apply_deterministic(&mut self, op: &crate::circuit::Operation, record: &mut Vec<bool>) {
        use OpKind::*;
        match op.kind {
            XError | ZError | YError | Depolarize1 | Depolarize2 | Tick => {}
            M => {
                for &q in &op.targets {
                    record.push(self.measure_desired(q as usize, false).value);
                }
            }
            MX => {
                for &q in &op.targets {
                    self.h(q as usize);
                    record.push(self.measure_desired(q as usize, false).value);
                    self.h(q as usize);
                }
            }
            MR => {
                for &q in &op.targets {
                    let m = self.measure_desired(q as usize, false);
                    record.push(m.value);
                    if m.value {
                        self.x_gate(q as usize);
                    }
                }
            }
            _ => self.apply_unitary_or_reset(op),
        }
    }

    fn apply_sampled<R: Rng>(
        &mut self,
        op: &crate::circuit::Operation,
        record: &mut Vec<bool>,
        rng: &mut R,
    ) {
        use OpKind::*;
        match op.kind {
            Tick => {}
            XError => {
                for &q in &op.targets {
                    if rng.random::<f64>() < op.arg {
                        self.x_gate(q as usize);
                    }
                }
            }
            ZError => {
                for &q in &op.targets {
                    if rng.random::<f64>() < op.arg {
                        self.z_gate(q as usize);
                    }
                }
            }
            YError => {
                for &q in &op.targets {
                    if rng.random::<f64>() < op.arg {
                        self.y_gate(q as usize);
                    }
                }
            }
            Depolarize1 => {
                for &q in &op.targets {
                    if rng.random::<f64>() < op.arg {
                        match rng.random_range(0..3) {
                            0 => self.x_gate(q as usize),
                            1 => self.y_gate(q as usize),
                            _ => self.z_gate(q as usize),
                        }
                    }
                }
            }
            Depolarize2 => {
                for pair in op.targets.chunks_exact(2) {
                    if rng.random::<f64>() < op.arg {
                        let which = rng.random_range(1..16u32);
                        self.apply_pauli_index(pair[0] as usize, which & 3);
                        self.apply_pauli_index(pair[1] as usize, which >> 2);
                    }
                }
            }
            M => {
                for &q in &op.targets {
                    record.push(self.measure(q as usize, rng).value);
                }
            }
            MX => {
                for &q in &op.targets {
                    self.h(q as usize);
                    record.push(self.measure(q as usize, rng).value);
                    self.h(q as usize);
                }
            }
            MR => {
                for &q in &op.targets {
                    let m = self.measure(q as usize, rng);
                    record.push(m.value);
                    if m.value {
                        self.x_gate(q as usize);
                    }
                }
            }
            _ => self.apply_unitary_or_reset(op),
        }
    }

    /// Applies Pauli 0=I, 1=X, 2=Z, 3=Y (two-bit x/z encoding: bit0 = x, bit1 = z).
    fn apply_pauli_index(&mut self, q: usize, code: u32) {
        match code {
            0 => {}
            1 => self.x_gate(q),
            2 => self.z_gate(q),
            3 => self.y_gate(q),
            _ => unreachable!(),
        }
    }

    fn apply_unitary_or_reset(&mut self, op: &crate::circuit::Operation) {
        use OpKind::*;
        match op.kind {
            X => op.targets.iter().for_each(|&q| self.x_gate(q as usize)),
            Y => op.targets.iter().for_each(|&q| self.y_gate(q as usize)),
            Z => op.targets.iter().for_each(|&q| self.z_gate(q as usize)),
            H => op.targets.iter().for_each(|&q| self.h(q as usize)),
            S => op.targets.iter().for_each(|&q| self.s(q as usize)),
            SDag => op.targets.iter().for_each(|&q| self.s_dag(q as usize)),
            SqrtX => op.targets.iter().for_each(|&q| self.sqrt_x(q as usize)),
            SqrtXDag => op.targets.iter().for_each(|&q| self.sqrt_x_dag(q as usize)),
            CX => {
                for c in op.targets.chunks_exact(2) {
                    self.cx(c[0] as usize, c[1] as usize);
                }
            }
            CZ => {
                for c in op.targets.chunks_exact(2) {
                    self.cz(c[0] as usize, c[1] as usize);
                }
            }
            Swap => {
                for c in op.targets.chunks_exact(2) {
                    self.swap(c[0] as usize, c[1] as usize);
                }
            }
            R => op.targets.iter().for_each(|&q| self.reset(q as usize)),
            RX => op.targets.iter().for_each(|&q| self.reset_x(q as usize)),
            _ => unreachable!("handled by caller: {:?}", op.kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_state_measures_zero_deterministically() {
        let mut sim = TableauSim::new(1);
        // The desired value is only taken when the outcome is random.
        let m = sim.measure_desired(0, true);
        assert!(!m.value);
        assert!(m.deterministic);
    }

    #[test]
    fn x_flip_measures_one() {
        let mut sim = TableauSim::new(1);
        sim.x_gate(0);
        let m = sim.measure_desired(0, false);
        assert!(m.value);
        assert!(m.deterministic);
    }

    #[test]
    fn plus_state_is_random_then_collapses() {
        let mut sim = TableauSim::new(1);
        sim.h(0);
        let m1 = sim.measure_forced(0, true);
        assert!(!m1.deterministic);
        assert!(m1.value);
        let m2 = sim.measure_forced(0, true);
        assert!(m2.deterministic);
        assert!(m2.value, "state must stay collapsed");
    }

    #[test]
    fn bell_pair_correlations() {
        let mut sim = TableauSim::new(2);
        sim.h(0);
        sim.cx(0, 1);
        let a = sim.measure_forced(0, true);
        let b = sim.measure_forced(1, a.value);
        assert!(!a.deterministic);
        assert!(b.deterministic);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn forced_consistent_with_deterministic_outcome_is_accepted() {
        let mut sim = TableauSim::new(1);
        sim.x_gate(0);
        let m = sim.measure_forced(0, true);
        assert!(m.deterministic);
        assert!(m.value);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "deterministically")]
    fn forced_inconsistent_with_deterministic_outcome_panics() {
        let mut sim = TableauSim::new(1);
        sim.x_gate(0);
        // |1⟩ measures 1 deterministically; forcing 0 is a caller bug.
        let _ = sim.measure_forced(0, false);
    }

    #[test]
    fn measure_desired_never_panics_on_mismatch() {
        let mut sim = TableauSim::new(1);
        sim.x_gate(0);
        let m = sim.measure_desired(0, false);
        assert!(m.deterministic);
        assert!(m.value, "deterministic value wins over the desired one");
    }

    #[test]
    fn ghz_parity() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let mut sim = TableauSim::new(3);
            sim.h(0);
            sim.cx(0, 1);
            sim.cx(1, 2);
            let a = sim.measure(0, &mut rng).value;
            let b = sim.measure(1, &mut rng).value;
            let c = sim.measure(2, &mut rng).value;
            assert_eq!(a, b);
            assert_eq!(b, c);
        }
    }

    #[test]
    fn s_squared_is_z() {
        // S² |+> = Z |+> = |−>, so H S S H |0> = |1>.
        let mut sim = TableauSim::new(1);
        sim.h(0);
        sim.s(0);
        sim.s(0);
        sim.h(0);
        assert_eq!(sim.peek_z(0), Some(true));
    }

    #[test]
    fn s_dag_inverts_s() {
        let mut sim = TableauSim::new(1);
        sim.h(0);
        sim.s(0);
        sim.s_dag(0);
        sim.h(0);
        assert_eq!(sim.peek_z(0), Some(false));
    }

    #[test]
    fn sqrt_x_squares_to_x() {
        let mut sim = TableauSim::new(1);
        sim.sqrt_x(0);
        sim.sqrt_x(0);
        assert_eq!(sim.peek_z(0), Some(true));
    }

    #[test]
    fn cz_phase_kickback() {
        // CZ on |+>|1> flips the first qubit to |−>.
        let mut sim = TableauSim::new(2);
        sim.h(0);
        sim.x_gate(1);
        sim.cz(0, 1);
        sim.h(0);
        assert_eq!(sim.peek_z(0), Some(true));
    }

    #[test]
    fn swap_moves_excitation() {
        let mut sim = TableauSim::new(2);
        sim.x_gate(0);
        sim.swap(0, 1);
        assert_eq!(sim.peek_z(0), Some(false));
        assert_eq!(sim.peek_z(1), Some(true));
    }

    #[test]
    fn reset_collapses_bell_partner() {
        // Resetting half of a Bell pair measures it: the partner collapses to
        // the (forced-false) measured value in this trajectory.
        let mut sim = TableauSim::new(2);
        sim.h(0);
        sim.cx(0, 1);
        sim.reset(0);
        assert_eq!(sim.peek_z(0), Some(false));
        assert_eq!(sim.peek_z(1), Some(false));
    }

    #[test]
    fn teleportation_is_deterministic_per_branch() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            // Teleport |1> from qubit 0 to qubit 2.
            let mut sim = TableauSim::new(3);
            sim.x_gate(0);
            sim.h(1);
            sim.cx(1, 2);
            sim.cx(0, 1);
            sim.h(0);
            let m0 = sim.measure(0, &mut rng).value;
            let m1 = sim.measure(1, &mut rng).value;
            if m1 {
                sim.x_gate(2);
            }
            if m0 {
                sim.z_gate(2);
            }
            assert_eq!(sim.peek_z(2), Some(true));
        }
    }

    #[test]
    fn reference_sample_of_deterministic_circuit() {
        let mut c = Circuit::new();
        c.r(&[0, 1]);
        c.x(&[0]);
        c.cx(&[(0, 1)]);
        c.m(&[0, 1]);
        assert_eq!(TableauSim::reference_sample(&c), vec![true, true]);
    }

    #[test]
    fn reference_sample_forces_random_to_zero() {
        let mut c = Circuit::new();
        c.h(&[0]);
        c.m(&[0]);
        assert_eq!(TableauSim::reference_sample(&c), vec![false]);
    }

    #[test]
    fn mx_measures_plus_deterministically() {
        let mut c = Circuit::new();
        c.rx(&[0]);
        c.mx(&[0]);
        assert_eq!(TableauSim::reference_sample(&c), vec![false]);
        let mut c2 = Circuit::new();
        c2.rx(&[0]);
        c2.z(&[0]);
        c2.mx(&[0]);
        assert_eq!(TableauSim::reference_sample(&c2), vec![true]);
    }

    #[test]
    fn stabilizer_measurement_repeats() {
        // Measuring ZZ via an ancilla twice gives identical outcomes.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let mut sim = TableauSim::new(3);
            sim.h(0); // random-ish state
            sim.h(1);
            sim.cx(0, 1);
            let mut outcomes = Vec::new();
            for _ in 0..2 {
                sim.reset(2);
                sim.cx(0, 2);
                sim.cx(1, 2);
                outcomes.push(sim.measure(2, &mut rng).value);
            }
            assert_eq!(outcomes[0], outcomes[1]);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// H is self-inverse on random product states.
        #[test]
        fn h_self_inverse(bits in proptest::collection::vec(any::<bool>(), 1..6)) {
            let n = bits.len();
            let mut sim = TableauSim::new(n);
            for (q, &b) in bits.iter().enumerate() {
                if b { sim.x_gate(q); }
                sim.h(q);
                sim.h(q);
            }
            for (q, &b) in bits.iter().enumerate() {
                prop_assert_eq!(sim.peek_z(q), Some(b));
            }
        }

        /// CX is self-inverse.
        #[test]
        fn cx_self_inverse(a in any::<bool>(), b in any::<bool>()) {
            let mut sim = TableauSim::new(2);
            if a { sim.x_gate(0); }
            if b { sim.x_gate(1); }
            sim.cx(0, 1);
            sim.cx(0, 1);
            prop_assert_eq!(sim.peek_z(0), Some(a));
            prop_assert_eq!(sim.peek_z(1), Some(b));
        }

        /// CX computes XOR onto the target.
        #[test]
        fn cx_is_xor(a in any::<bool>(), b in any::<bool>()) {
            let mut sim = TableauSim::new(2);
            if a { sim.x_gate(0); }
            if b { sim.x_gate(1); }
            sim.cx(0, 1);
            prop_assert_eq!(sim.peek_z(1), Some(a ^ b));
        }
    }
}
