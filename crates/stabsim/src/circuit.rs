//! Stabilizer circuit intermediate representation.
//!
//! A [`Circuit`] is a flat list of operations: Clifford gates, resets,
//! measurements, probabilistic Pauli noise channels and detector/observable
//! annotations. It is the common input to the tableau simulator, the
//! Pauli-frame sampler and detector-error-model extraction.
//!
//! Detectors are parity checks over measurement outcomes that are
//! deterministic in the absence of noise; observables are the logical
//! measurement parities whose flips constitute logical errors.

use std::fmt;

/// The kind of a circuit operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Pauli X gate (targets: qubits).
    X,
    /// Pauli Y gate.
    Y,
    /// Pauli Z gate.
    Z,
    /// Hadamard gate.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// Inverse phase gate.
    SDag,
    /// Square root of X.
    SqrtX,
    /// Inverse square root of X.
    SqrtXDag,
    /// Controlled-X; targets are (control, target) pairs.
    CX,
    /// Controlled-Z; targets are pairs.
    CZ,
    /// Swap; targets are pairs.
    Swap,
    /// Reset to |0⟩.
    R,
    /// Reset to |+⟩.
    RX,
    /// Z-basis measurement.
    M,
    /// X-basis measurement.
    MX,
    /// Z-basis measurement followed by reset to |0⟩.
    MR,
    /// Bit-flip channel: X with probability `arg` on each target.
    XError,
    /// Phase-flip channel: Z with probability `arg`.
    ZError,
    /// Y-flip channel.
    YError,
    /// Single-qubit depolarizing: one of X/Y/Z each with probability `arg`/3.
    Depolarize1,
    /// Two-qubit depolarizing on pairs: one of the 15 non-identity two-qubit
    /// Paulis each with probability `arg`/15.
    Depolarize2,
    /// Layer separator (no effect on semantics).
    Tick,
}

impl OpKind {
    /// Whether this operation is a probabilistic noise channel.
    pub fn is_noise(self) -> bool {
        matches!(
            self,
            OpKind::XError
                | OpKind::ZError
                | OpKind::YError
                | OpKind::Depolarize1
                | OpKind::Depolarize2
        )
    }

    /// Whether this operation takes its targets in pairs.
    pub fn is_two_qubit(self) -> bool {
        matches!(
            self,
            OpKind::CX | OpKind::CZ | OpKind::Swap | OpKind::Depolarize2
        )
    }

    /// Whether this operation records measurement outcomes.
    pub fn is_measurement(self) -> bool {
        matches!(self, OpKind::M | OpKind::MX | OpKind::MR)
    }

    /// Whether this operation discards prior state on its targets.
    pub fn is_reset(self) -> bool {
        matches!(self, OpKind::R | OpKind::RX | OpKind::MR)
    }
}

/// One operation: a kind, a flat target list and an optional probability argument.
///
/// Two-qubit kinds interpret `targets` as consecutive pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    /// The operation kind.
    pub kind: OpKind,
    /// Flat target list (pairs for two-qubit kinds).
    pub targets: Vec<u32>,
    /// Probability argument for noise channels; 0.0 otherwise.
    pub arg: f64,
}

impl Operation {
    /// Iterates over the (control, target) pairs of a two-qubit operation.
    ///
    /// # Panics
    ///
    /// Panics if the kind is not a two-qubit operation.
    pub fn pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        assert!(self.kind.is_two_qubit(), "{:?} is not two-qubit", self.kind);
        self.targets.chunks_exact(2).map(|c| (c[0], c[1]))
    }
}

/// A reference to a previously recorded measurement, counting backwards:
/// `MeasRecord::back(1)` is the most recent measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeasRecord(usize);

impl MeasRecord {
    /// References the `k`-th most recent measurement (`k ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn back(k: usize) -> Self {
        assert!(k >= 1, "measurement look-back must be at least 1");
        Self(k)
    }

    /// The look-back offset.
    pub fn offset(self) -> usize {
        self.0
    }
}

/// A stabilizer circuit: operations plus detector and observable definitions.
///
/// # Example
///
/// ```
/// use raa_stabsim::circuit::{Circuit, MeasRecord};
///
/// // A two-round bit-flip repetition-code memory on 3 qubits (2 ancillas).
/// let mut c = Circuit::new();
/// c.r(&[0, 1, 2, 3, 4]);
/// for _ in 0..2 {
///     c.x_error(&[0, 2, 4], 1e-3);
///     c.cx(&[(0, 1), (2, 1), (2, 3), (4, 3)]);
///     c.mr(&[1, 3]);
/// }
/// // Compare the two rounds of each ancilla.
/// c.detector(&[MeasRecord::back(1), MeasRecord::back(3)]);
/// c.detector(&[MeasRecord::back(2), MeasRecord::back(4)]);
/// c.m(&[0, 2, 4]);
/// c.observable_include(0, &[MeasRecord::back(3)]);
/// assert_eq!(c.num_measurements(), 7);
/// assert_eq!(c.num_detectors(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    ops: Vec<Operation>,
    num_qubits: u32,
    num_measurements: usize,
    /// Detector definitions as absolute measurement indices.
    detectors: Vec<Vec<usize>>,
    /// Observable definitions as absolute measurement indices, by observable id.
    observables: Vec<Vec<usize>>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Self::default()
    }

    /// The operations in program order.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of qubits touched (highest target + 1).
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Total number of measurement records produced.
    pub fn num_measurements(&self) -> usize {
        self.num_measurements
    }

    /// Number of detectors defined.
    pub fn num_detectors(&self) -> usize {
        self.detectors.len()
    }

    /// Number of observables defined (highest observable id + 1).
    pub fn num_observables(&self) -> usize {
        self.observables.len()
    }

    /// The measurement indices (absolute) of detector `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn detector_measurements(&self, i: usize) -> &[usize] {
        &self.detectors[i]
    }

    /// All detector definitions.
    pub fn detectors(&self) -> &[Vec<usize>] {
        &self.detectors
    }

    /// The measurement indices (absolute) of observable `i`.
    pub fn observable(&self, i: usize) -> &[usize] {
        &self.observables[i]
    }

    /// All observable definitions.
    pub fn observables(&self) -> &[Vec<usize>] {
        &self.observables
    }

    fn note_targets(&mut self, targets: &[u32]) {
        for &t in targets {
            self.num_qubits = self.num_qubits.max(t + 1);
        }
    }

    fn push_simple(&mut self, kind: OpKind, targets: &[u32]) -> &mut Self {
        if targets.is_empty() {
            return self;
        }
        self.note_targets(targets);
        if kind.is_measurement() {
            self.num_measurements += targets.len();
        }
        self.ops.push(Operation {
            kind,
            targets: targets.to_vec(),
            arg: 0.0,
        });
        self
    }

    fn push_pairs(&mut self, kind: OpKind, pairs: &[(u32, u32)]) -> &mut Self {
        if pairs.is_empty() {
            return self;
        }
        let mut targets = Vec::with_capacity(pairs.len() * 2);
        for &(a, b) in pairs {
            assert!(a != b, "two-qubit {kind:?} with identical targets {a}");
            targets.push(a);
            targets.push(b);
        }
        self.note_targets(&targets);
        self.ops.push(Operation {
            kind,
            targets,
            arg: 0.0,
        });
        self
    }

    fn push_noise(&mut self, kind: OpKind, targets: &[u32], p: f64) -> &mut Self {
        assert!(
            (0.0..=1.0).contains(&p) && p.is_finite(),
            "noise probability must be in [0, 1], got {p}"
        );
        if targets.is_empty() || p == 0.0 {
            return self;
        }
        self.note_targets(targets);
        self.ops.push(Operation {
            kind,
            targets: targets.to_vec(),
            arg: p,
        });
        self
    }

    /// Appends Pauli X gates.
    pub fn x(&mut self, qs: &[u32]) -> &mut Self {
        self.push_simple(OpKind::X, qs)
    }

    /// Appends Pauli Y gates.
    pub fn y(&mut self, qs: &[u32]) -> &mut Self {
        self.push_simple(OpKind::Y, qs)
    }

    /// Appends Pauli Z gates.
    pub fn z(&mut self, qs: &[u32]) -> &mut Self {
        self.push_simple(OpKind::Z, qs)
    }

    /// Appends Hadamard gates.
    pub fn h(&mut self, qs: &[u32]) -> &mut Self {
        self.push_simple(OpKind::H, qs)
    }

    /// Appends S gates.
    pub fn s(&mut self, qs: &[u32]) -> &mut Self {
        self.push_simple(OpKind::S, qs)
    }

    /// Appends S† gates.
    pub fn s_dag(&mut self, qs: &[u32]) -> &mut Self {
        self.push_simple(OpKind::SDag, qs)
    }

    /// Appends √X gates.
    pub fn sqrt_x(&mut self, qs: &[u32]) -> &mut Self {
        self.push_simple(OpKind::SqrtX, qs)
    }

    /// Appends √X† gates.
    pub fn sqrt_x_dag(&mut self, qs: &[u32]) -> &mut Self {
        self.push_simple(OpKind::SqrtXDag, qs)
    }

    /// Appends CX gates on (control, target) pairs.
    ///
    /// # Panics
    ///
    /// Panics if any pair repeats a qubit.
    pub fn cx(&mut self, pairs: &[(u32, u32)]) -> &mut Self {
        self.push_pairs(OpKind::CX, pairs)
    }

    /// Appends CZ gates on pairs.
    pub fn cz(&mut self, pairs: &[(u32, u32)]) -> &mut Self {
        self.push_pairs(OpKind::CZ, pairs)
    }

    /// Appends SWAP gates on pairs.
    pub fn swap(&mut self, pairs: &[(u32, u32)]) -> &mut Self {
        self.push_pairs(OpKind::Swap, pairs)
    }

    /// Appends resets to |0⟩.
    pub fn r(&mut self, qs: &[u32]) -> &mut Self {
        self.push_simple(OpKind::R, qs)
    }

    /// Appends resets to |+⟩.
    pub fn rx(&mut self, qs: &[u32]) -> &mut Self {
        self.push_simple(OpKind::RX, qs)
    }

    /// Appends Z-basis measurements (one record per target, in order).
    pub fn m(&mut self, qs: &[u32]) -> &mut Self {
        self.push_simple(OpKind::M, qs)
    }

    /// Appends X-basis measurements.
    pub fn mx(&mut self, qs: &[u32]) -> &mut Self {
        self.push_simple(OpKind::MX, qs)
    }

    /// Appends Z-basis measure-and-reset operations.
    pub fn mr(&mut self, qs: &[u32]) -> &mut Self {
        self.push_simple(OpKind::MR, qs)
    }

    /// Appends an X-error channel with probability `p` per target.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn x_error(&mut self, qs: &[u32], p: f64) -> &mut Self {
        self.push_noise(OpKind::XError, qs, p)
    }

    /// Appends a Z-error channel.
    pub fn z_error(&mut self, qs: &[u32], p: f64) -> &mut Self {
        self.push_noise(OpKind::ZError, qs, p)
    }

    /// Appends a Y-error channel.
    pub fn y_error(&mut self, qs: &[u32], p: f64) -> &mut Self {
        self.push_noise(OpKind::YError, qs, p)
    }

    /// Appends a single-qubit depolarizing channel with total probability `p`.
    pub fn depolarize1(&mut self, qs: &[u32], p: f64) -> &mut Self {
        self.push_noise(OpKind::Depolarize1, qs, p)
    }

    /// Appends a two-qubit depolarizing channel on pairs with total probability `p`.
    pub fn depolarize2(&mut self, pairs: &[(u32, u32)], p: f64) -> &mut Self {
        assert!(
            (0.0..=1.0).contains(&p) && p.is_finite(),
            "noise probability must be in [0, 1], got {p}"
        );
        if pairs.is_empty() || p == 0.0 {
            return self;
        }
        let mut targets = Vec::with_capacity(pairs.len() * 2);
        for &(a, b) in pairs {
            assert!(a != b, "two-qubit noise with identical targets {a}");
            targets.push(a);
            targets.push(b);
        }
        self.note_targets(&targets);
        self.ops.push(Operation {
            kind: OpKind::Depolarize2,
            targets,
            arg: p,
        });
        self
    }

    /// Appends a layer separator.
    pub fn tick(&mut self) -> &mut Self {
        self.ops.push(Operation {
            kind: OpKind::Tick,
            targets: Vec::new(),
            arg: 0.0,
        });
        self
    }

    /// Defines a detector over the referenced measurement records.
    ///
    /// # Panics
    ///
    /// Panics if any record looks back beyond the measurements recorded so far.
    pub fn detector(&mut self, recs: &[MeasRecord]) -> &mut Self {
        let abs = self.resolve(recs);
        self.detectors.push(abs);
        self
    }

    /// Adds the referenced measurement records to observable `id` (creating it
    /// and any lower-numbered observables if needed).
    ///
    /// # Panics
    ///
    /// Panics if any record looks back beyond the measurements recorded so far.
    pub fn observable_include(&mut self, id: usize, recs: &[MeasRecord]) -> &mut Self {
        let abs = self.resolve(recs);
        while self.observables.len() <= id {
            self.observables.push(Vec::new());
        }
        self.observables[id].extend(abs);
        self
    }

    /// Defines a detector over *absolute* measurement indices (0-based from
    /// the start of the circuit). Convenient for programmatic builders that
    /// track indices themselves.
    ///
    /// # Panics
    ///
    /// Panics if any index refers to a measurement not yet recorded.
    pub fn detector_at(&mut self, meas: &[usize]) -> &mut Self {
        for &m in meas {
            assert!(
                m < self.num_measurements,
                "measurement index {m} out of range ({} recorded)",
                self.num_measurements
            );
        }
        self.detectors.push(meas.to_vec());
        self
    }

    /// Adds *absolute* measurement indices to observable `id`.
    ///
    /// # Panics
    ///
    /// Panics if any index refers to a measurement not yet recorded.
    pub fn observable_include_at(&mut self, id: usize, meas: &[usize]) -> &mut Self {
        for &m in meas {
            assert!(
                m < self.num_measurements,
                "measurement index {m} out of range ({} recorded)",
                self.num_measurements
            );
        }
        while self.observables.len() <= id {
            self.observables.push(Vec::new());
        }
        self.observables[id].extend_from_slice(meas);
        self
    }

    fn resolve(&self, recs: &[MeasRecord]) -> Vec<usize> {
        recs.iter()
            .map(|r| {
                assert!(
                    r.offset() <= self.num_measurements,
                    "measurement look-back {} exceeds {} recorded measurements",
                    r.offset(),
                    self.num_measurements
                );
                self.num_measurements - r.offset()
            })
            .collect()
    }

    /// Appends all operations, detectors and observables of `other`,
    /// offsetting its measurement references past this circuit's records.
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        let meas_offset = self.num_measurements;
        for op in &other.ops {
            self.ops.push(op.clone());
        }
        self.num_qubits = self.num_qubits.max(other.num_qubits);
        self.num_measurements += other.num_measurements;
        for det in &other.detectors {
            self.detectors
                .push(det.iter().map(|m| m + meas_offset).collect());
        }
        for (id, obs) in other.observables.iter().enumerate() {
            while self.observables.len() <= id {
                self.observables.push(Vec::new());
            }
            self.observables[id].extend(obs.iter().map(|m| m + meas_offset));
        }
        self
    }

    /// Counts operations of a given kind.
    pub fn count_ops(&self, kind: OpKind) -> usize {
        self.ops.iter().filter(|o| o.kind == kind).count()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# circuit: {} qubits, {} ops, {} measurements, {} detectors, {} observables",
            self.num_qubits,
            self.ops.len(),
            self.num_measurements,
            self.num_detectors(),
            self.num_observables()
        )?;
        for op in &self.ops {
            if op.kind.is_noise() {
                write!(f, "{:?}({})", op.kind, op.arg)?;
            } else {
                write!(f, "{:?}", op.kind)?;
            }
            for t in &op.targets {
                write!(f, " {t}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts_measurements_and_qubits() {
        let mut c = Circuit::new();
        c.r(&[0, 1, 2]);
        c.h(&[0]);
        c.cx(&[(0, 1), (1, 2)]);
        c.m(&[0, 1, 2]);
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.num_measurements(), 3);
        assert_eq!(c.count_ops(OpKind::CX), 1);
    }

    #[test]
    fn detector_resolution_is_absolute() {
        let mut c = Circuit::new();
        c.m(&[0, 1]);
        c.m(&[2]);
        c.detector(&[MeasRecord::back(1), MeasRecord::back(3)]);
        assert_eq!(c.detector_measurements(0), &[2, 0]);
    }

    #[test]
    fn observable_includes_accumulate() {
        let mut c = Circuit::new();
        c.m(&[0]);
        c.observable_include(1, &[MeasRecord::back(1)]);
        c.m(&[1]);
        c.observable_include(1, &[MeasRecord::back(1)]);
        assert_eq!(c.num_observables(), 2);
        assert_eq!(c.observable(1), &[0, 1]);
        assert!(c.observable(0).is_empty());
    }

    #[test]
    fn append_offsets_measurements() {
        let mut a = Circuit::new();
        a.m(&[0]);
        let mut b = Circuit::new();
        b.m(&[1]);
        b.detector(&[MeasRecord::back(1)]);
        a.append(&b);
        assert_eq!(a.num_measurements(), 2);
        assert_eq!(a.detector_measurements(0), &[1]);
    }

    #[test]
    #[should_panic(expected = "identical targets")]
    fn rejects_self_pair() {
        Circuit::new().cx(&[(3, 3)]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_deep_lookback() {
        let mut c = Circuit::new();
        c.m(&[0]);
        c.detector(&[MeasRecord::back(2)]);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        Circuit::new().x_error(&[0], 1.5);
    }

    #[test]
    fn zero_probability_noise_is_elided() {
        let mut c = Circuit::new();
        c.x_error(&[0], 0.0);
        assert_eq!(c.ops().len(), 0);
    }

    #[test]
    fn display_nonempty() {
        let mut c = Circuit::new();
        c.h(&[0]).depolarize1(&[0], 0.25).m(&[0]);
        let s = c.to_string();
        assert!(s.contains("Depolarize1(0.25) 0"));
    }
}
