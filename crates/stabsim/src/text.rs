//! Plain-text serialization of stabilizer circuits (a Stim-like format).
//!
//! One instruction per line: an opcode, an optional `(p)` argument for noise
//! channels, and whitespace-separated targets. Detectors and observables use
//! `rec[-k]` look-back references. Lines starting with `#` are comments.
//!
//! ```text
//! R 0 1 2
//! H 0
//! CX 0 1
//! DEPOLARIZE2(0.001) 0 1
//! M 0 1
//! DETECTOR rec[-1] rec[-2]
//! OBSERVABLE_INCLUDE(0) rec[-1]
//! ```
//!
//! The format round-trips: `parse(&c.to_text()) == c` for every circuit the
//! builder can produce, which makes it the interchange format for saving
//! experiment circuits and diffing them in CI.

use crate::circuit::{Circuit, MeasRecord, OpKind};
use crate::dem::{DemError, DetectorErrorModel};
use std::fmt::Write as _;

/// Error from parsing a circuit text file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn opcode_name(kind: OpKind) -> &'static str {
    match kind {
        OpKind::X => "X",
        OpKind::Y => "Y",
        OpKind::Z => "Z",
        OpKind::H => "H",
        OpKind::S => "S",
        OpKind::SDag => "S_DAG",
        OpKind::SqrtX => "SQRT_X",
        OpKind::SqrtXDag => "SQRT_X_DAG",
        OpKind::CX => "CX",
        OpKind::CZ => "CZ",
        OpKind::Swap => "SWAP",
        OpKind::R => "R",
        OpKind::RX => "RX",
        OpKind::M => "M",
        OpKind::MX => "MX",
        OpKind::MR => "MR",
        OpKind::XError => "X_ERROR",
        OpKind::ZError => "Z_ERROR",
        OpKind::YError => "Y_ERROR",
        OpKind::Depolarize1 => "DEPOLARIZE1",
        OpKind::Depolarize2 => "DEPOLARIZE2",
        OpKind::Tick => "TICK",
    }
}

fn opcode_from(name: &str) -> Option<OpKind> {
    Some(match name {
        "X" => OpKind::X,
        "Y" => OpKind::Y,
        "Z" => OpKind::Z,
        "H" => OpKind::H,
        "S" => OpKind::S,
        "S_DAG" => OpKind::SDag,
        "SQRT_X" => OpKind::SqrtX,
        "SQRT_X_DAG" => OpKind::SqrtXDag,
        "CX" | "CNOT" => OpKind::CX,
        "CZ" => OpKind::CZ,
        "SWAP" => OpKind::Swap,
        "R" => OpKind::R,
        "RX" => OpKind::RX,
        "M" => OpKind::M,
        "MX" => OpKind::MX,
        "MR" => OpKind::MR,
        "X_ERROR" => OpKind::XError,
        "Z_ERROR" => OpKind::ZError,
        "Y_ERROR" => OpKind::YError,
        "DEPOLARIZE1" => OpKind::Depolarize1,
        "DEPOLARIZE2" => OpKind::Depolarize2,
        "TICK" => OpKind::Tick,
        _ => return None,
    })
}

/// Serializes `circuit` to the text format.
///
/// Detector/observable lines are interleaved at the measurement positions
/// they reference, expressed as relative `rec[-k]` look-backs.
pub fn to_text(circuit: &Circuit) -> String {
    let mut out = String::new();
    // Annotations are emitted after the measurement op that completes them.
    let mut detectors: Vec<(usize, usize)> = circuit
        .detectors()
        .iter()
        .enumerate()
        .map(|(i, m)| (m.iter().copied().max().unwrap_or(0), i))
        .collect();
    detectors.sort_unstable();
    let mut observables: Vec<(usize, usize)> = Vec::new();
    for (id, meas) in circuit.observables().iter().enumerate() {
        for &m in meas {
            observables.push((m, id));
        }
    }
    observables.sort_unstable();

    let mut det_iter = detectors.into_iter().peekable();
    let mut obs_iter = observables.into_iter().peekable();
    let mut meas_count = 0usize;

    for op in circuit.ops() {
        if op.kind == OpKind::Tick {
            out.push_str("TICK\n");
            continue;
        }
        if op.kind.is_noise() {
            let _ = write!(out, "{}({})", opcode_name(op.kind), op.arg);
        } else {
            out.push_str(opcode_name(op.kind));
        }
        for &t in &op.targets {
            let _ = write!(out, " {t}");
        }
        out.push('\n');
        if op.kind.is_measurement() {
            meas_count += op.targets.len();
            while det_iter.peek().is_some_and(|&(last, _)| last < meas_count) {
                let (_, det_idx) = det_iter.next().expect("peeked");
                out.push_str("DETECTOR");
                for &m in circuit.detector_measurements(det_idx) {
                    let _ = write!(out, " rec[-{}]", meas_count - m);
                }
                out.push('\n');
            }
            while obs_iter.peek().is_some_and(|&(m, _)| m < meas_count) {
                let (m, id) = obs_iter.next().expect("peeked");
                let _ = writeln!(out, "OBSERVABLE_INCLUDE({id}) rec[-{}]", meas_count - m);
            }
        }
    }
    out
}

/// Parses a circuit from the text format.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for unknown opcodes,
/// malformed arguments, bad targets or out-of-range `rec[]` references.
pub fn parse(text: &str) -> Result<Circuit, ParseError> {
    let mut c = Circuit::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let err = |message: String| ParseError { line, message };
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let head = parts.next().expect("non-empty line");
        let (name, arg) = match head.find('(') {
            Some(open) => {
                let close = head
                    .rfind(')')
                    .ok_or_else(|| err(format!("unclosed '(' in {head:?}")))?;
                let arg: f64 = head[open + 1..close]
                    .parse()
                    .map_err(|e| err(format!("bad argument in {head:?}: {e}")))?;
                (&head[..open], Some(arg))
            }
            None => (head, None),
        };

        if name == "DETECTOR" || name == "OBSERVABLE_INCLUDE" {
            let mut recs = Vec::new();
            for tok in parts {
                let inner = tok
                    .strip_prefix("rec[-")
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| err(format!("expected rec[-k], got {tok:?}")))?;
                let k: usize = inner
                    .parse()
                    .map_err(|e| err(format!("bad look-back {tok:?}: {e}")))?;
                if k == 0 || k > c.num_measurements() {
                    return Err(err(format!(
                        "look-back {k} out of range ({} measurements so far)",
                        c.num_measurements()
                    )));
                }
                recs.push(MeasRecord::back(k));
            }
            if name == "DETECTOR" {
                c.detector(&recs);
            } else {
                let id = arg.ok_or_else(|| err("OBSERVABLE_INCLUDE needs (id)".into()))?;
                if id < 0.0 || id.fract() != 0.0 {
                    return Err(err(format!("bad observable id {id}")));
                }
                c.observable_include(id as usize, &recs);
            }
            continue;
        }

        let kind = opcode_from(name).ok_or_else(|| err(format!("unknown instruction {name:?}")))?;
        let targets: Vec<u32> = parts
            .map(|t| t.parse().map_err(|e| err(format!("bad target {t:?}: {e}"))))
            .collect::<Result<_, _>>()?;

        match kind {
            OpKind::Tick => {
                c.tick();
            }
            k if k.is_noise() => {
                let p = arg.ok_or_else(|| err(format!("{name} needs a probability")))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(err(format!("probability {p} out of range")));
                }
                match k {
                    OpKind::XError => c.x_error(&targets, p),
                    OpKind::ZError => c.z_error(&targets, p),
                    OpKind::YError => c.y_error(&targets, p),
                    OpKind::Depolarize1 => c.depolarize1(&targets, p),
                    OpKind::Depolarize2 => {
                        if !targets.len().is_multiple_of(2) {
                            return Err(err("DEPOLARIZE2 needs an even target count".into()));
                        }
                        let pairs: Vec<(u32, u32)> =
                            targets.chunks_exact(2).map(|c| (c[0], c[1])).collect();
                        c.depolarize2(&pairs, p)
                    }
                    _ => unreachable!(),
                };
            }
            k if k.is_two_qubit() => {
                if !targets.len().is_multiple_of(2) {
                    return Err(err(format!("{name} needs an even target count")));
                }
                let pairs: Vec<(u32, u32)> =
                    targets.chunks_exact(2).map(|c| (c[0], c[1])).collect();
                if pairs.iter().any(|&(a, b)| a == b) {
                    return Err(err(format!("{name} with identical pair targets")));
                }
                match k {
                    OpKind::CX => c.cx(&pairs),
                    OpKind::CZ => c.cz(&pairs),
                    OpKind::Swap => c.swap(&pairs),
                    _ => unreachable!(),
                };
            }
            OpKind::X => {
                c.x(&targets);
            }
            OpKind::Y => {
                c.y(&targets);
            }
            OpKind::Z => {
                c.z(&targets);
            }
            OpKind::H => {
                c.h(&targets);
            }
            OpKind::S => {
                c.s(&targets);
            }
            OpKind::SDag => {
                c.s_dag(&targets);
            }
            OpKind::SqrtX => {
                c.sqrt_x(&targets);
            }
            OpKind::SqrtXDag => {
                c.sqrt_x_dag(&targets);
            }
            OpKind::R => {
                c.r(&targets);
            }
            OpKind::RX => {
                c.rx(&targets);
            }
            OpKind::M => {
                c.m(&targets);
            }
            OpKind::MX => {
                c.mx(&targets);
            }
            OpKind::MR => {
                c.mr(&targets);
            }
            _ => unreachable!(),
        }
    }
    Ok(c)
}

/// Serializes a detector error model to a canonical text format, one
/// mechanism per line:
///
/// ```text
/// dem 24 detectors 1 observables
/// error(0.001) D0 D4
/// error(0.0006666666666666666) D3 L0
/// ```
///
/// Probabilities use Rust's shortest round-trip float formatting, so the
/// output is byte-for-byte deterministic for a given model and parses back
/// losslessly with [`parse_dem`]. Mechanisms appear in the model's order
/// (which [`DetectorErrorModel::from_circuit`] makes canonical by sorting on
/// detector sets); this is the format used by the golden `.dem` fixtures
/// under `tests/fixtures/`.
pub fn dem_to_text(dem: &DetectorErrorModel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dem {} detectors {} observables",
        dem.num_detectors, dem.num_observables
    );
    for e in dem.iter() {
        let _ = write!(out, "error({})", e.probability);
        for d in &e.detectors {
            let _ = write!(out, " D{d}");
        }
        for o in 0..64 {
            if e.observables >> o & 1 == 1 {
                let _ = write!(out, " L{o}");
            }
        }
        out.push('\n');
    }
    out
}

/// Parses a detector error model from the [`dem_to_text`] format.
///
/// Lines starting with `#` and blank lines are ignored.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for a missing or
/// malformed header, bad probabilities, or out-of-range detector/observable
/// references.
pub fn parse_dem(text: &str) -> Result<DetectorErrorModel, ParseError> {
    let mut dem: Option<DetectorErrorModel> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let err = |message: String| ParseError { line, message };
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let head = parts.next().expect("non-empty line");
        if head == "dem" {
            if dem.is_some() {
                return Err(err("duplicate dem header".into()));
            }
            let mut field = |label: &str| -> Result<usize, ParseError> {
                let n: usize = parts
                    .next()
                    .ok_or_else(|| err(format!("missing {label} count")))?
                    .parse()
                    .map_err(|e| err(format!("bad {label} count: {e}")))?;
                if parts.next() != Some(label) {
                    return Err(err(format!("expected {label:?} after its count")));
                }
                Ok(n)
            };
            let num_detectors = field("detectors")?;
            let num_observables = field("observables")?;
            if num_observables > 64 {
                return Err(err(format!(
                    "at most 64 observables supported, got {num_observables}"
                )));
            }
            dem = Some(DetectorErrorModel {
                num_detectors,
                num_observables,
                errors: Vec::new(),
            });
            continue;
        }
        let dem = dem
            .as_mut()
            .ok_or_else(|| err("error line before the dem header".into()))?;
        let inner = head
            .strip_prefix("error(")
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| err(format!("expected error(p), got {head:?}")))?;
        let probability: f64 = inner
            .parse()
            .map_err(|e| err(format!("bad probability {inner:?}: {e}")))?;
        if !(0.0..=1.0).contains(&probability) {
            return Err(err(format!("probability {probability} out of range")));
        }
        let mut detectors = Vec::new();
        let mut observables = 0u64;
        for tok in parts {
            if let Some(d) = tok.strip_prefix('D') {
                let d: u32 = d
                    .parse()
                    .map_err(|e| err(format!("bad detector {tok:?}: {e}")))?;
                if d as usize >= dem.num_detectors {
                    return Err(err(format!(
                        "detector {d} out of range ({} declared)",
                        dem.num_detectors
                    )));
                }
                detectors.push(d);
            } else if let Some(o) = tok.strip_prefix('L') {
                let o: usize = o
                    .parse()
                    .map_err(|e| err(format!("bad observable {tok:?}: {e}")))?;
                if o >= dem.num_observables {
                    return Err(err(format!(
                        "observable {o} out of range ({} declared)",
                        dem.num_observables
                    )));
                }
                observables |= 1 << o;
            } else {
                return Err(err(format!("expected D<i> or L<i>, got {tok:?}")));
            }
        }
        dem.errors.push(DemError {
            probability,
            detectors,
            observables,
        });
    }
    dem.ok_or(ParseError {
        line: text.lines().count().max(1),
        message: "missing dem header".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    fn example_circuit() -> Circuit {
        let mut c = Circuit::new();
        c.r(&[0, 1, 2]);
        c.h(&[0]);
        c.cx(&[(0, 1), (1, 2)]);
        c.depolarize2(&[(0, 1)], 1e-3);
        c.x_error(&[2], 5e-4);
        c.tick();
        c.m(&[0, 1, 2]);
        c.detector(&[MeasRecord::back(1), MeasRecord::back(2)]);
        c.observable_include(0, &[MeasRecord::back(3)]);
        c
    }

    fn circuits_equal(a: &Circuit, b: &Circuit) -> bool {
        // Observable includes are XOR sets: compare order-insensitively.
        let canon = |c: &Circuit| -> Vec<Vec<usize>> {
            c.observables()
                .iter()
                .map(|o| {
                    let mut v = o.clone();
                    v.sort_unstable();
                    v
                })
                .collect()
        };
        a.ops() == b.ops()
            && a.detectors() == b.detectors()
            && canon(a) == canon(b)
            && a.num_measurements() == b.num_measurements()
    }

    #[test]
    fn round_trip_simple() {
        let c = example_circuit();
        let text = to_text(&c);
        let parsed = parse(&text).expect("round trip parse");
        assert!(circuits_equal(&c, &parsed), "text:\n{text}");
    }

    #[test]
    fn round_trip_surface_code_scale() {
        // A larger machine-generated circuit must survive the round trip too.
        let mut c = Circuit::new();
        c.r(&(0..25).collect::<Vec<_>>());
        for round in 0..3 {
            c.depolarize1(&(0..25).collect::<Vec<_>>(), 1e-3);
            let pairs: Vec<(u32, u32)> = (0..12).map(|i| (2 * i, 2 * i + 1)).collect();
            c.cx(&pairs);
            c.depolarize2(&pairs, 1e-3);
            c.mr(&[1, 3, 5, 7]);
            for i in 0..4usize {
                if round == 0 {
                    c.detector(&[MeasRecord::back(4 - i)]);
                } else {
                    c.detector(&[MeasRecord::back(4 - i), MeasRecord::back(8 - i)]);
                }
            }
        }
        c.m(&[0, 2, 4]);
        c.observable_include(0, &[MeasRecord::back(1), MeasRecord::back(2)]);
        let parsed = parse(&to_text(&c)).expect("parse");
        assert!(circuits_equal(&c, &parsed));
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# a comment\n\nH 0\n  # indented comment\nM 0\nDETECTOR rec[-1]\n";
        let c = parse(text).expect("parse");
        assert_eq!(c.num_measurements(), 1);
        assert_eq!(c.num_detectors(), 1);
    }

    #[test]
    fn semantics_preserved_through_round_trip() {
        use crate::dem::DetectorErrorModel;
        let c = example_circuit();
        let parsed = parse(&to_text(&c)).expect("parse");
        let dem_a = DetectorErrorModel::from_circuit(&c);
        let dem_b = DetectorErrorModel::from_circuit(&parsed);
        assert_eq!(dem_a.errors, dem_b.errors);
    }

    #[test]
    fn error_unknown_instruction() {
        let e = parse("FLIP 0").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown instruction"));
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn error_bad_probability() {
        let e = parse("X_ERROR(1.5) 0").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn error_missing_probability() {
        let e = parse("X_ERROR 0").unwrap_err();
        assert!(e.message.contains("needs a probability"));
    }

    #[test]
    fn error_bad_lookback() {
        let e = parse("M 0\nDETECTOR rec[-2]").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn error_odd_pair_count() {
        let e = parse("CX 0 1 2").unwrap_err();
        assert!(e.message.contains("even target count"));
    }

    #[test]
    fn error_self_pair() {
        let e = parse("CZ 3 3").unwrap_err();
        assert!(e.message.contains("identical"));
    }

    #[test]
    fn cnot_alias_accepted() {
        let c = parse("CNOT 0 1").expect("parse");
        assert_eq!(c.count_ops(OpKind::CX), 1);
    }

    #[test]
    fn dem_text_round_trips_losslessly() {
        let dem = DetectorErrorModel::from_circuit(&example_circuit());
        let text = dem_to_text(&dem);
        let parsed = parse_dem(&text).expect("parse dem");
        assert_eq!(parsed.num_detectors, dem.num_detectors);
        assert_eq!(parsed.num_observables, dem.num_observables);
        assert_eq!(parsed.errors, dem.errors, "text:\n{text}");
        // Shortest round-trip floats: re-serializing is byte-stable.
        assert_eq!(dem_to_text(&parsed), text);
    }

    #[test]
    fn dem_text_is_deterministic() {
        let a = dem_to_text(&DetectorErrorModel::from_circuit(&example_circuit()));
        let b = dem_to_text(&DetectorErrorModel::from_circuit(&example_circuit()));
        assert_eq!(a, b);
    }

    #[test]
    fn dem_parse_errors() {
        assert!(parse_dem("").unwrap_err().message.contains("missing dem"));
        assert!(parse_dem("error(0.1) D0")
            .unwrap_err()
            .message
            .contains("before the dem header"));
        assert!(parse_dem("dem 1 detectors 1 observables\nerror(2.0) D0")
            .unwrap_err()
            .message
            .contains("out of range"));
        assert!(parse_dem("dem 1 detectors 1 observables\nerror(0.1) D7")
            .unwrap_err()
            .message
            .contains("out of range"));
        assert!(parse_dem("dem 1 detectors 1 observables\nerror(0.1) L3")
            .unwrap_err()
            .message
            .contains("out of range"));
        assert!(parse_dem("dem 1 detectors 1 observables\nerror(0.1) Q1")
            .unwrap_err()
            .message
            .contains("expected D<i> or L<i>"));
        let e = parse_dem("dem 1 detectors").unwrap_err();
        assert!(e.message.contains("observables"), "{}", e.message);
    }

    #[test]
    fn dem_parse_accepts_comments_and_blanks() {
        let text = "# golden fixture\n\ndem 2 detectors 1 observables\nerror(0.25) D0 D1 L0\n";
        let dem = parse_dem(text).expect("parse");
        assert_eq!(dem.num_detectors, 2);
        assert_eq!(dem.errors.len(), 1);
        assert_eq!(dem.errors[0].observables, 1);
    }
}
