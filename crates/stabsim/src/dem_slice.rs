//! DEM time-slicing and the streaming (windowed) sampler.
//!
//! Transversal architectures make decoding *deep*: the circuits the paper
//! cares about run for hundreds or thousands of syndrome-extraction rounds,
//! and the whole-batch sampling path materializes every detector of every
//! shot — O(rounds) resident memory per shot, which walls off exactly the
//! deep-circuit regime windowed decoding (paper §II.4) exists for.
//!
//! This module removes that wall in two steps:
//!
//! * [`slice_dem_by_layer`] partitions a [`DetectorErrorModel`]'s
//!   mechanisms by detector *time layer* (uniform blocks of
//!   `detectors_per_layer` detector indices, the layering the round-by-round
//!   circuit builders produce). Each mechanism is assigned to the layer of
//!   its **earliest** detector — boundary mechanisms that straddle rounds
//!   (e.g. measurement errors flipping the same comparison in two
//!   consecutive rounds) belong to the earliest window they touch.
//!   The slices are a partition: [`concat_slices`] reproduces the original
//!   mechanism list exactly (for canonically sorted models, byte-for-byte
//!   under [`crate::text::dem_to_text`]).
//! * [`StreamingDemSampler`] compiles one [`DemSampler`] per slice, with
//!   detector ids rebased to a rolling resident window of
//!   `max_layer_span + 1` layers, and emits one finalized layer of
//!   shot-major syndrome bits at a time: after slice `k` is sampled, no
//!   later slice can touch layer `k` (their mechanisms start strictly
//!   later), so layer `k`'s bits are final and the window rolls forward.
//!   Peak resident memory is O(window) per shot, **independent of circuit
//!   depth**, while reusing the geometric-skip Bernoulli walks of
//!   [`DemSampler`] unchanged.
//!
//! The sampler is deliberately seeding-agnostic: the caller provides one
//! RNG per layer (the Monte-Carlo pipeline derives per-layer streams from
//! its per-batch seeds), so the streaming and whole-batch entry points of
//! `raa_decode::mc` consume identical randomness and produce bit-identical
//! statistics.

use crate::dem::DetectorErrorModel;
use crate::dem_sampler::DemSampler;
use crate::frame::SyndromeBatch;
use rand::Rng;

/// Checks that `num_detectors` splits into uniform layers of
/// `detectors_per_layer`.
///
/// # Panics
///
/// Panics if `detectors_per_layer` is zero or does not divide
/// `num_detectors` — a mismatched layer size would silently misassign every
/// detector after the first partial layer, so it is rejected loudly.
pub fn validate_uniform_layers(num_detectors: usize, detectors_per_layer: usize) {
    assert!(
        detectors_per_layer >= 1,
        "detectors_per_layer must be at least 1"
    );
    assert!(
        num_detectors.is_multiple_of(detectors_per_layer),
        "detector count {num_detectors} is not divisible by detectors_per_layer \
         {detectors_per_layer}: the uniform layering would silently misassign detectors"
    );
}

/// Partitions `dem`'s mechanisms into one slice per time layer (uniform
/// layers of `detectors_per_layer` detector indices). Mechanism → slice of
/// its earliest detector; detector-free (observable-only) mechanisms go to
/// slice 0. Every slice keeps the full model's `num_detectors` /
/// `num_observables`, so each is a valid [`DetectorErrorModel`] on its own.
///
/// The partition is stable: [`concat_slices`] restores the original
/// mechanism list. For canonically ordered models (sorted by detector set,
/// as [`DetectorErrorModel::from_circuit`] produces), the earliest-detector
/// layer is monotone along the list, so each slice is a contiguous run.
///
/// # Panics
///
/// Panics on a layering that does not divide the detector count (see
/// [`validate_uniform_layers`]).
pub fn slice_dem_by_layer(
    dem: &DetectorErrorModel,
    detectors_per_layer: usize,
) -> Vec<DetectorErrorModel> {
    validate_uniform_layers(dem.num_detectors, detectors_per_layer);
    let num_layers = dem.num_detectors / detectors_per_layer;
    let mut slices: Vec<DetectorErrorModel> = (0..num_layers)
        .map(|_| DetectorErrorModel {
            num_detectors: dem.num_detectors,
            num_observables: dem.num_observables,
            errors: Vec::new(),
        })
        .collect();
    for e in dem.iter() {
        let layer = e
            .detectors
            .first()
            .map_or(0, |&d| d as usize / detectors_per_layer);
        assert!(
            layer < num_layers,
            "mechanism detector {:?} out of range for {} detectors",
            e.detectors,
            dem.num_detectors
        );
        slices[layer].errors.push(e.clone());
    }
    slices
}

/// Concatenates slices back into one model (the inverse of
/// [`slice_dem_by_layer`]): mechanisms appear in slice order, preserving
/// each slice's internal order.
///
/// # Panics
///
/// Panics if the slices disagree on detector/observable counts.
pub fn concat_slices(slices: &[DetectorErrorModel]) -> DetectorErrorModel {
    let mut out = DetectorErrorModel::default();
    for (i, s) in slices.iter().enumerate() {
        if i == 0 {
            out.num_detectors = s.num_detectors;
            out.num_observables = s.num_observables;
        } else {
            assert_eq!(
                (s.num_detectors, s.num_observables),
                (out.num_detectors, out.num_observables),
                "slice {i} disagrees on model shape"
            );
        }
        out.errors.extend(s.errors.iter().cloned());
    }
    out
}

/// Reusable per-batch state of a [`StreamingDemSampler`]: the rolling
/// resident window of syndrome bits plus the finalized-layer export
/// buffer. Peak size is `shots × window_detectors` bits — bounded by the
/// window, never by the circuit depth.
#[derive(Debug, Clone, Default)]
pub struct StreamingScratch {
    /// Rolling resident window: shot-major bits for the next
    /// `window_layers` layers, bit 0 = first detector of the next
    /// unfinalized layer.
    window: SyndromeBatch,
    /// The most recently finalized layer (local detector ids `0..dpl`).
    layer: SyndromeBatch,
    shots: usize,
    next_layer: usize,
}

impl StreamingScratch {
    /// The finalized layer emitted by the last
    /// [`StreamingDemSampler::sample_next_layer`] call: shot-major bits
    /// over layer-local detector ids `0..detectors_per_layer`.
    pub fn layer(&self) -> &SyndromeBatch {
        &self.layer
    }

    /// Detectors resident in the rolling window per shot — the streaming
    /// memory bound (equals [`StreamingDemSampler::window_detectors`] after
    /// [`StreamingDemSampler::start_batch`], independent of circuit depth).
    pub fn resident_detectors(&self) -> usize {
        self.window.num_detectors()
    }

    /// Index of the next layer to sample (layers `0..next_layer` have been
    /// finalized this batch).
    pub fn next_layer(&self) -> usize {
        self.next_layer
    }
}

/// A ring of the last `capacity` finalized layer bitplanes of a streaming
/// batch, with per-layer rebasing metadata: extraction adds each layer's
/// global detector-id base back, so consumers see full-circuit detector
/// ids. This is what lets a window-major decode loop revisit the shot-major
/// bits of every layer in an open window after the sampler has already
/// rolled past them — resident memory stays `capacity × shots × dpl` bits,
/// bounded by the window, never the circuit depth.
#[derive(Debug, Clone, Default)]
pub struct LayerRing {
    /// `slots[l % capacity]` holds layer `l`'s shot-major bitplane.
    slots: Vec<SyndromeBatch>,
    capacity: usize,
    /// Layers `stored - min(stored, capacity) .. stored` are resident.
    stored: usize,
    detectors_per_layer: usize,
}

impl LayerRing {
    /// Clears the ring for a new batch retaining `capacity` layers of
    /// `detectors_per_layer` detectors each (allocations are reused).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn reset(&mut self, capacity: usize, detectors_per_layer: usize) {
        assert!(capacity >= 1, "ring must retain at least one layer");
        if self.slots.len() < capacity {
            self.slots.resize_with(capacity, SyndromeBatch::default);
        }
        self.capacity = capacity;
        self.stored = 0;
        self.detectors_per_layer = detectors_per_layer;
    }

    /// Stores the next finalized layer's bitplane (layers must arrive in
    /// order `0, 1, 2, …`), evicting the layer `capacity` steps back.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of order.
    pub fn store(&mut self, layer: usize, bits: &SyndromeBatch) {
        assert_eq!(layer, self.stored, "layers must be stored in order");
        self.slots[layer % self.capacity].clone_from(bits);
        self.stored = layer + 1;
    }

    /// Appends shot `s`'s fired detectors of layers `lo..hi` to `out`,
    /// rebased to full-circuit detector ids (`layer × dpl + local`),
    /// ascending. `scratch` is a reusable per-layer extraction buffer.
    ///
    /// # Panics
    ///
    /// Panics if any requested layer is not resident (not yet stored, or
    /// already evicted).
    pub fn extract_into(
        &self,
        s: usize,
        lo: usize,
        hi: usize,
        scratch: &mut Vec<u32>,
        out: &mut Vec<u32>,
    ) {
        assert!(
            hi <= self.stored && self.stored - lo <= self.capacity,
            "layers {lo}..{hi} not resident (stored {}, capacity {})",
            self.stored,
            self.capacity
        );
        for l in lo..hi {
            self.slots[l % self.capacity].fired_into(s, scratch);
            let base = (l * self.detectors_per_layer) as u32;
            out.extend(scratch.iter().map(|&d| d + base));
        }
    }
}

/// A detector error model compiled for **streaming** Monte-Carlo sampling:
/// one compiled [`DemSampler`] per time slice, emitting one finalized layer
/// of shot-major syndrome bits at a time with O(window) resident memory.
///
/// See the [module docs](self) for the slicing semantics. Layers must be
/// sampled in order ([`StreamingDemSampler::sample_next_layer`]), each from
/// a caller-provided RNG; the whole-batch reference entry point
/// ([`StreamingDemSampler::sample_all_into`]) drives the identical
/// machinery, so for the same per-layer RNGs the two produce identical
/// bits.
///
/// # Example
///
/// ```
/// use raa_stabsim::{Circuit, MeasRecord, DetectorErrorModel, StreamingDemSampler,
///                   StreamingScratch};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// // Two rounds of one detector each; the X error flips only round 0.
/// let mut c = Circuit::new();
/// c.r(&[0]);
/// c.x_error(&[0], 0.25);
/// c.mr(&[0]);
/// c.detector(&[MeasRecord::back(1)]);
/// c.mr(&[0]);
/// c.detector(&[MeasRecord::back(1)]);
///
/// let dem = DetectorErrorModel::from_circuit(&c);
/// let sampler = StreamingDemSampler::new(&dem, 1);
/// assert_eq!(sampler.num_layers(), 2);
///
/// let mut scratch = StreamingScratch::default();
/// let mut obs = vec![0u64; 1000];
/// sampler.start_batch(1000, &mut scratch);
/// let mut fired = 0;
/// for layer in 0..sampler.num_layers() {
///     let mut rng = StdRng::seed_from_u64(layer as u64);
///     sampler.sample_next_layer(&mut rng, &mut scratch, &mut obs);
///     fired += (0..1000).filter(|&s| scratch.layer().detector(s, 0)).count();
///     if layer == 0 {
///         let rate = fired as f64 / 1000.0;
///         assert!((rate - 0.25).abs() < 0.05);
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct StreamingDemSampler {
    detectors_per_layer: usize,
    num_layers: usize,
    num_detectors: usize,
    num_observables: usize,
    /// Layers resident at once: `max_layer_span + 1`.
    window_layers: usize,
    /// Per-layer compiled samplers, detector ids rebased to the rolling
    /// window (mechanism of slice `k`: id `d` becomes `d - k·dpl`).
    slices: Vec<DemSampler>,
}

impl StreamingDemSampler {
    /// Compiles `dem` for streaming over uniform layers of
    /// `detectors_per_layer` detectors.
    ///
    /// # Panics
    ///
    /// Panics if the model has no detectors, if the layering does not
    /// divide the detector count ([`validate_uniform_layers`]), or on any
    /// model [`DemSampler::new`] rejects.
    pub fn new(dem: &DetectorErrorModel, detectors_per_layer: usize) -> Self {
        assert!(
            dem.num_detectors > 0,
            "streaming needs at least one detector layer"
        );
        let sliced = slice_dem_by_layer(dem, detectors_per_layer);
        let num_layers = sliced.len();
        // Maximum time extent of a mechanism, in layers: how far a slice's
        // footprint can spill past its own layer.
        let mut span = 0usize;
        for e in dem.iter() {
            if let (Some(&first), Some(&last)) = (e.detectors.first(), e.detectors.last()) {
                span = span.max(
                    last as usize / detectors_per_layer - first as usize / detectors_per_layer,
                );
            }
        }
        let window_layers = (span + 1).min(num_layers);
        let window_detectors = window_layers * detectors_per_layer;
        let slices = sliced
            .into_iter()
            .enumerate()
            .map(|(k, mut slice)| {
                let base = (k * detectors_per_layer) as u32;
                for e in &mut slice.errors {
                    for d in &mut e.detectors {
                        *d -= base;
                    }
                }
                slice.num_detectors = window_detectors;
                DemSampler::new(&slice)
            })
            .collect();
        Self {
            detectors_per_layer,
            num_layers,
            num_detectors: dem.num_detectors,
            num_observables: dem.num_observables,
            window_layers,
            slices,
        }
    }

    /// Detectors per time layer.
    pub fn detectors_per_layer(&self) -> usize {
        self.detectors_per_layer
    }

    /// Number of time layers.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Total detectors of the underlying model.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Observables of the underlying model.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// Layers resident at once (`max mechanism layer span + 1`).
    pub fn window_layers(&self) -> usize {
        self.window_layers
    }

    /// Detectors resident per shot while streaming — the memory bound,
    /// independent of `num_layers`.
    pub fn window_detectors(&self) -> usize {
        self.window_layers * self.detectors_per_layer
    }

    /// Begins a streaming batch of `shots` shots, resetting `scratch`'s
    /// rolling window (reusing its allocations).
    pub fn start_batch(&self, shots: usize, scratch: &mut StreamingScratch) {
        scratch.shots = shots;
        scratch.next_layer = 0;
        scratch.window.reset(shots, self.window_detectors());
        scratch.layer.reset(shots, self.detectors_per_layer);
    }

    /// Samples the next time layer's slice from `rng` and finalizes that
    /// layer: its shot-major bits land in `scratch.layer()` (layer-local
    /// detector ids), per-shot observable flips XOR into `obs_masks`, and
    /// the resident window rolls forward one layer. Returns the finalized
    /// layer's index; absolute detector ids are
    /// `layer · detectors_per_layer + local`.
    ///
    /// # Panics
    ///
    /// Panics if every layer of the batch was already sampled or if
    /// `obs_masks` is not one entry per shot.
    pub fn sample_next_layer<R: Rng>(
        &self,
        rng: &mut R,
        scratch: &mut StreamingScratch,
        obs_masks: &mut [u64],
    ) -> usize {
        let k = scratch.next_layer;
        assert!(
            k < self.num_layers,
            "all {} layers of this batch already sampled",
            self.num_layers
        );
        self.slices[k].sample_syndromes_accumulate(
            scratch.shots,
            rng,
            &mut scratch.window,
            obs_masks,
        );
        // Export the finalized layer: the low `dpl` bits of each resident
        // row (no later slice can flip them — their mechanisms start in
        // strictly later layers).
        let dpl = self.detectors_per_layer;
        let layer_words = dpl.div_ceil(64);
        let top_mask = if dpl.is_multiple_of(64) {
            !0u64
        } else {
            (1u64 << (dpl % 64)) - 1
        };
        scratch.layer.reset(scratch.shots, dpl);
        {
            let (win, wps) = scratch.window.rows();
            let (out, ops) = scratch.layer.rows_mut();
            debug_assert_eq!(ops, layer_words);
            for s in 0..scratch.shots {
                let src = &win[s * wps..s * wps + layer_words];
                let dst = &mut out[s * ops..(s + 1) * ops];
                dst.copy_from_slice(src);
                dst[layer_words - 1] &= top_mask;
            }
        }
        scratch.window.shift_rows_down(dpl);
        scratch.next_layer = k + 1;
        k
    }

    /// Whole-batch reference entry point: samples every layer in order
    /// (layer `k` from `layer_rng(k)`) and materializes the full
    /// `shots × num_detectors` [`SyndromeBatch`] plus per-shot observable
    /// masks — the same layout [`DemSampler::sample_syndromes_into`]
    /// produces. Drives the identical per-layer machinery as
    /// [`StreamingDemSampler::sample_next_layer`], so for the same
    /// per-layer RNGs the bits are identical to a streamed run.
    pub fn sample_all_into<R: Rng>(
        &self,
        shots: usize,
        mut layer_rng: impl FnMut(usize) -> R,
        scratch: &mut StreamingScratch,
        syndromes: &mut SyndromeBatch,
        obs_masks: &mut Vec<u64>,
    ) {
        syndromes.reset(shots, self.num_detectors);
        obs_masks.clear();
        obs_masks.resize(shots, 0);
        self.start_batch(shots, scratch);
        let dpl = self.detectors_per_layer;
        let layer_words = dpl.div_ceil(64);
        for layer in 0..self.num_layers {
            let mut rng = layer_rng(layer);
            self.sample_next_layer(&mut rng, scratch, obs_masks);
            // OR the finalized layer into the full batch at its absolute
            // bit offset.
            let base_bit = layer * dpl;
            let (src, sps) = scratch.layer.rows();
            let (dst, dps) = syndromes.rows_mut();
            let (skip, rot) = (base_bit / 64, base_bit % 64);
            for s in 0..shots {
                let row = &src[s * sps..s * sps + layer_words];
                let out = &mut dst[s * dps..(s + 1) * dps];
                for (i, &w) in row.iter().enumerate() {
                    if w == 0 {
                        continue;
                    }
                    out[skip + i] |= w << rot;
                    if rot != 0 && skip + i + 1 < dps {
                        out[skip + i + 1] |= w >> (64 - rot);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Circuit, MeasRecord};
    use crate::dem_sampler::DemSampler;
    use crate::text::dem_to_text;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// d-bit repetition-code memory: (d-1) detectors per round, plus a
    /// final comparison layer of (d-1) — uniformly layered.
    fn repetition(d: usize, rounds: usize, p: f64) -> Circuit {
        let n_anc = d - 1;
        let data: Vec<u32> = (0..d as u32).map(|i| 2 * i).collect();
        let anc: Vec<u32> = (0..n_anc as u32).map(|i| 2 * i + 1).collect();
        let mut c = Circuit::new();
        c.r(&(0..(d + n_anc) as u32).collect::<Vec<_>>());
        for round in 0..rounds {
            c.x_error(&data, p);
            let pairs: Vec<(u32, u32)> = (0..n_anc)
                .flat_map(|i| [(data[i], anc[i]), (data[i + 1], anc[i])])
                .collect();
            c.cx(&pairs);
            c.mr(&anc);
            for i in 0..n_anc {
                if round == 0 {
                    c.detector(&[MeasRecord::back(n_anc - i)]);
                } else {
                    c.detector(&[MeasRecord::back(n_anc - i), MeasRecord::back(2 * n_anc - i)]);
                }
            }
        }
        c.m(&data);
        for i in 0..n_anc {
            c.detector(&[
                MeasRecord::back(d - i),
                MeasRecord::back(d - i - 1),
                MeasRecord::back(d + n_anc - i),
            ]);
        }
        c.observable_include(0, &[MeasRecord::back(d)]);
        c
    }

    #[test]
    fn slices_partition_and_concatenate_byte_for_byte() {
        let dem = DetectorErrorModel::from_circuit(&repetition(5, 6, 1e-2));
        let dpl = 4;
        let slices = slice_dem_by_layer(&dem, dpl);
        assert_eq!(slices.len(), dem.num_detectors / dpl);
        let total: usize = slices.iter().map(|s| s.len()).sum();
        assert_eq!(total, dem.len());
        // Earliest-detector assignment.
        for (k, s) in slices.iter().enumerate() {
            for e in s.iter() {
                let first = e.detectors.first().map_or(0, |&d| d as usize / dpl);
                assert_eq!(first, k);
            }
        }
        // from_circuit output is canonically sorted, so concatenation is
        // byte-for-byte the original model.
        assert_eq!(dem_to_text(&concat_slices(&slices)), dem_to_text(&dem));
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn slicing_rejects_non_divisible_layering() {
        let dem = DetectorErrorModel::from_circuit(&repetition(5, 6, 1e-2));
        slice_dem_by_layer(&dem, 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn slicing_rejects_zero_layer_size() {
        let dem = DetectorErrorModel::from_circuit(&repetition(3, 2, 1e-2));
        slice_dem_by_layer(&dem, 0);
    }

    #[test]
    fn streamed_bits_match_unrebased_slice_reference() {
        // The rolling-window path (rebased footprints + layer export +
        // shift) must reproduce, bit for bit, a reference that samples each
        // slice at full width with the same RNGs.
        let dem = DetectorErrorModel::from_circuit(&repetition(5, 8, 3e-2));
        let dpl = 4;
        let shots = 300;
        let sampler = StreamingDemSampler::new(&dem, dpl);
        assert_eq!(sampler.num_layers(), dem.num_detectors / dpl);

        // Reference: per-slice full-width samplers, same per-layer seeds.
        let slices = slice_dem_by_layer(&dem, dpl);
        let mut ref_batch = SyndromeBatch::default();
        ref_batch.reset(shots, dem.num_detectors);
        let mut ref_obs = vec![0u64; shots];
        for (k, slice) in slices.iter().enumerate() {
            let s = DemSampler::new(slice);
            let mut rng = StdRng::seed_from_u64(1000 + k as u64);
            let mut part = SyndromeBatch::default();
            let mut part_obs = Vec::new();
            s.sample_syndromes_into(shots, &mut rng, &mut part, &mut part_obs);
            let mut fired = Vec::new();
            for shot in 0..shots {
                part.fired_into(shot, &mut fired);
                for &d in &fired {
                    ref_batch.set_detector(shot, d as usize);
                }
                ref_obs[shot] ^= part_obs[shot];
            }
        }

        let mut scratch = StreamingScratch::default();
        let mut got = SyndromeBatch::default();
        let mut got_obs = Vec::new();
        sampler.sample_all_into(
            shots,
            |k| StdRng::seed_from_u64(1000 + k as u64),
            &mut scratch,
            &mut got,
            &mut got_obs,
        );
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for shot in 0..shots {
            got.fired_into(shot, &mut a);
            ref_batch.fired_into(shot, &mut b);
            assert_eq!(a, b, "shot {shot}");
            assert_eq!(got_obs[shot], ref_obs[shot], "shot {shot}");
        }
        // This workload fires: the comparison is not vacuous.
        assert!(
            got_obs.iter().any(|&m| m != 0) || {
                let mut any = false;
                for shot in 0..shots {
                    got.fired_into(shot, &mut a);
                    any |= !a.is_empty();
                }
                any
            }
        );
    }

    #[test]
    fn streaming_matches_layer_by_layer_drive() {
        // Driving sample_next_layer by hand must equal sample_all_into for
        // the same per-layer RNGs (the streamed-vs-batch mc guarantee).
        let dem = DetectorErrorModel::from_circuit(&repetition(3, 10, 5e-2));
        let dpl = 2;
        let shots = 200;
        let sampler = StreamingDemSampler::new(&dem, dpl);
        let mut scratch = StreamingScratch::default();
        let mut whole = SyndromeBatch::default();
        let mut whole_obs = Vec::new();
        sampler.sample_all_into(
            shots,
            |k| StdRng::seed_from_u64(7 + k as u64),
            &mut scratch,
            &mut whole,
            &mut whole_obs,
        );

        let mut obs = vec![0u64; shots];
        sampler.start_batch(shots, &mut scratch);
        let mut streamed: Vec<Vec<u32>> = vec![Vec::new(); shots];
        for layer in 0..sampler.num_layers() {
            let mut rng = StdRng::seed_from_u64(7 + layer as u64);
            sampler.sample_next_layer(&mut rng, &mut scratch, &mut obs);
            let mut fired = Vec::new();
            for (s, shot_stream) in streamed.iter_mut().enumerate() {
                scratch.layer().fired_into(s, &mut fired);
                shot_stream.extend(fired.iter().map(|&d| d + (layer * dpl) as u32));
            }
        }
        let mut whole_fired = Vec::new();
        for s in 0..shots {
            whole.fired_into(s, &mut whole_fired);
            assert_eq!(streamed[s], whole_fired, "shot {s}");
            assert_eq!(obs[s], whole_obs[s], "shot {s}");
        }
    }

    #[test]
    fn window_is_bounded_and_depth_independent() {
        let shallow = DetectorErrorModel::from_circuit(&repetition(3, 10, 1e-3));
        let deep = DetectorErrorModel::from_circuit(&repetition(3, 200, 1e-3));
        let a = StreamingDemSampler::new(&shallow, 2);
        let b = StreamingDemSampler::new(&deep, 2);
        assert_eq!(a.window_detectors(), b.window_detectors());
        assert!(b.window_detectors() < b.num_detectors() / 10);
        let mut scratch = StreamingScratch::default();
        b.start_batch(64, &mut scratch);
        assert_eq!(scratch.resident_detectors(), b.window_detectors());
    }

    mod round_trip {
        use super::super::*;
        use crate::dem::DemError;
        use crate::text::dem_to_text;
        use proptest::prelude::*;
        use std::collections::BTreeSet;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]
            /// Slicing any canonically ordered model and concatenating the
            /// slices reproduces the original mechanism list — detectors,
            /// observables and probabilities byte-for-byte under
            /// `dem_to_text`.
            #[test]
            fn slice_then_concat_is_identity(
                dpl in 1usize..5,
                num_layers in 1usize..7,
                raw in proptest::collection::vec(
                    (
                        proptest::collection::btree_set(0u32..64, 0..5),
                        0u64..16,
                        0.0f64..1.0,
                    ),
                    0..40,
                ),
            ) {
                let nd = dpl * num_layers;
                let mut errors: Vec<DemError> = raw
                    .into_iter()
                    .map(|(dets, observables, probability)| DemError {
                        probability,
                        detectors: dets
                            .into_iter()
                            .map(|d| d % nd as u32)
                            .collect::<BTreeSet<u32>>()
                            .into_iter()
                            .collect(),
                        observables,
                    })
                    .collect();
                // Canonical model order (what `from_circuit` produces).
                errors.sort_by(|a, b| {
                    a.detectors
                        .cmp(&b.detectors)
                        .then(a.observables.cmp(&b.observables))
                });
                let dem = DetectorErrorModel {
                    num_detectors: nd,
                    num_observables: 4,
                    errors,
                };
                let slices = slice_dem_by_layer(&dem, dpl);
                prop_assert_eq!(slices.len(), num_layers);
                let total: usize = slices.iter().map(|s| s.len()).sum();
                prop_assert_eq!(total, dem.len());
                for (k, s) in slices.iter().enumerate() {
                    for e in s.iter() {
                        let earliest =
                            e.detectors.first().map_or(0, |&d| d as usize / dpl);
                        prop_assert_eq!(earliest, k);
                    }
                }
                prop_assert_eq!(
                    dem_to_text(&concat_slices(&slices)),
                    dem_to_text(&dem)
                );
            }
        }
    }

    #[test]
    fn observable_only_mechanisms_land_in_slice_zero() {
        use crate::dem::DemError;
        let dem = DetectorErrorModel {
            num_detectors: 4,
            num_observables: 1,
            errors: vec![
                DemError {
                    probability: 0.5,
                    detectors: vec![],
                    observables: 1,
                },
                DemError {
                    probability: 0.1,
                    detectors: vec![2],
                    observables: 0,
                },
            ],
        };
        let slices = slice_dem_by_layer(&dem, 2);
        assert_eq!(slices[0].len(), 1);
        assert_eq!(slices[1].len(), 1);
        let sampler = StreamingDemSampler::new(&dem, 2);
        let mut scratch = StreamingScratch::default();
        let mut obs = vec![0u64; 2000];
        sampler.start_batch(2000, &mut scratch);
        let mut rng = StdRng::seed_from_u64(3);
        sampler.sample_next_layer(&mut rng, &mut scratch, &mut obs);
        let flips = obs.iter().filter(|&&m| m != 0).count();
        assert!(
            (flips as f64 / 2000.0 - 0.5).abs() < 0.05,
            "observable-only mechanism must fire in slice 0: {flips}"
        );
    }
}
