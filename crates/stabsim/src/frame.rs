//! Bit-packed Pauli-frame Monte-Carlo sampler.
//!
//! Simulates many shots of a noisy stabilizer circuit at once by tracking,
//! per shot, only the Pauli *difference* (the frame) between the noisy run
//! and a noiseless reference run. Frames propagate through Clifford gates by
//! conjugation, noise channels XOR random Paulis into the frame, and a
//! measurement records a flip when the frame anticommutes with the measured
//! observable. Detector and observable values are then parities of flips,
//! exactly as in Stim's frame simulator.
//!
//! Shots are packed 64 per machine word, so one gate application costs a few
//! bitwise operations per 64 shots. Noise uses geometric skip sampling so the
//! cost scales with the number of *hits*, not the number of targets × shots.

use crate::circuit::{Circuit, OpKind};
use rand::{Rng, RngExt};

/// Samples of detector and observable flip bits for a batch of shots.
#[derive(Debug, Clone, Default)]
pub struct DetectorSamples {
    num_shots: usize,
    num_detectors: usize,
    num_observables: usize,
    words_per_row: usize,
    /// Detector-major bit matrix: row `d`, word `w` at `d * words_per_row + w`.
    detectors: Vec<u64>,
    /// Observable-major bit matrix.
    observables: Vec<u64>,
}

impl DetectorSamples {
    /// Clears and resizes the buffers for a batch of `num_shots` shots with
    /// the given detector/observable counts, reusing allocations. All bits
    /// are zero afterwards; samplers XOR flips in on top.
    ///
    /// # Panics
    ///
    /// Panics if `num_shots` is zero or `num_observables` exceeds 64 (the
    /// [`DetectorSamples::observable_mask`] packing limit).
    pub fn reset(&mut self, num_shots: usize, num_detectors: usize, num_observables: usize) {
        assert!(num_shots > 0, "need at least one shot");
        assert!(
            num_observables <= 64,
            "DetectorSamples supports at most 64 observables, got {num_observables}"
        );
        let words = num_shots.div_ceil(64);
        self.num_shots = num_shots;
        self.num_detectors = num_detectors;
        self.num_observables = num_observables;
        self.words_per_row = words;
        self.detectors.clear();
        self.detectors.resize(num_detectors * words, 0);
        self.observables.clear();
        self.observables.resize(num_observables * words, 0);
    }

    /// Mutable access to the detector/observable planes plus the row stride,
    /// for in-crate samplers that XOR flips directly into the bit matrices.
    pub(crate) fn planes_mut(&mut self) -> (&mut [u64], &mut [u64], usize) {
        (
            &mut self.detectors,
            &mut self.observables,
            self.words_per_row,
        )
    }
    /// Number of shots.
    pub fn num_shots(&self) -> usize {
        self.num_shots
    }

    /// Number of detectors per shot.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of observables per shot.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// The value of detector `d` in shot `s`.
    pub fn detector(&self, s: usize, d: usize) -> bool {
        assert!(s < self.num_shots && d < self.num_detectors);
        (self.detectors[d * self.words_per_row + s / 64] >> (s % 64)) & 1 == 1
    }

    /// The value of observable `o` in shot `s`.
    pub fn observable(&self, s: usize, o: usize) -> bool {
        assert!(s < self.num_shots && o < self.num_observables);
        (self.observables[o * self.words_per_row + s / 64] >> (s % 64)) & 1 == 1
    }

    /// The indices of detectors that fired in shot `s` (the syndrome).
    ///
    /// Allocates per call; hot loops should transpose once with
    /// [`DetectorSamples::transpose_detectors_into`] and extract syndromes
    /// with [`SyndromeBatch::fired_into`].
    pub fn fired_detectors(&self, s: usize) -> Vec<u32> {
        let mut out = Vec::new();
        self.fired_detectors_into(s, &mut out);
        out
    }

    /// Writes the indices of detectors that fired in shot `s` into `out`
    /// (cleared first), reading the detector-major matrix directly.
    pub fn fired_detectors_into(&self, s: usize, out: &mut Vec<u32>) {
        out.clear();
        out.extend(
            (0..self.num_detectors)
                .filter(|&d| self.detector(s, d))
                .map(|d| d as u32),
        );
    }

    /// Transposes the detector bits into a fresh shot-major
    /// [`SyndromeBatch`].
    pub fn transpose_detectors(&self) -> SyndromeBatch {
        let mut out = SyndromeBatch::default();
        self.transpose_detectors_into(&mut out);
        out
    }

    /// Transposes the detector-major bit matrix into `out`'s shot-major
    /// layout (64×64 bit-block transpose), so each shot's syndrome occupies
    /// contiguous words. Reuses `out`'s allocation; steady state performs no
    /// heap allocation.
    pub fn transpose_detectors_into(&self, out: &mut SyndromeBatch) {
        out.num_shots = self.num_shots;
        out.num_detectors = self.num_detectors;
        let wps = self.num_detectors.div_ceil(64);
        out.words_per_shot = wps;
        out.bits.clear();
        out.bits.resize(self.num_shots * wps, 0);
        let mut block = [0u64; 64];
        // Walk 64-detector × 64-shot tiles of the source matrix.
        for dw in 0..wps {
            let d0 = dw * 64;
            for sw in 0..self.words_per_row {
                let s0 = sw * 64;
                for (i, b) in block.iter_mut().enumerate() {
                    let d = d0 + i;
                    *b = if d < self.num_detectors {
                        self.detectors[d * self.words_per_row + sw]
                    } else {
                        0
                    };
                }
                transpose64(&mut block);
                for (j, &b) in block.iter().enumerate() {
                    let s = s0 + j;
                    if s < self.num_shots {
                        out.bits[s * wps + dw] = b;
                    }
                }
            }
        }
    }

    /// Observable bits of shot `s` packed into a u64 mask.
    pub fn observable_mask(&self, s: usize) -> u64 {
        let mut mask = 0u64;
        for o in 0..self.num_observables {
            if self.observable(s, o) {
                mask |= 1 << o;
            }
        }
        mask
    }

    /// Packs every shot's observable mask into `out` (cleared and resized
    /// to `num_shots`), skipping all-zero words — observable flips are
    /// rare below threshold, so this is nearly free. Reuses `out`'s
    /// allocation.
    pub fn observable_masks_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.num_shots, 0);
        for o in 0..self.num_observables {
            for w in 0..self.words_per_row {
                let mut word = self.observables[o * self.words_per_row + w];
                while word != 0 {
                    let s = w * 64 + word.trailing_zeros() as usize;
                    if s < self.num_shots {
                        out[s] |= 1 << o;
                    }
                    word &= word - 1;
                }
            }
        }
    }

    /// Fraction of shots in which at least one observable flipped.
    pub fn logical_error_rate(&self) -> f64 {
        if self.num_shots == 0 {
            return 0.0;
        }
        let mut bad = 0usize;
        for s in 0..self.num_shots {
            if self.observable_mask(s) != 0 {
                bad += 1;
            }
        }
        bad as f64 / self.num_shots as f64
    }
}

/// Shot-major detector bits: shot `s`'s syndrome is the contiguous words
/// `bits[s * words_per_shot ..][..words_per_shot]`, bit `d % 64` of word
/// `d / 64` holding detector `d`.
///
/// Produced by [`DetectorSamples::transpose_detectors_into`]; the layout
/// makes per-shot syndrome extraction a linear scan that skips empty words,
/// so sparse syndromes (the common case below threshold) cost almost
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct SyndromeBatch {
    num_shots: usize,
    num_detectors: usize,
    words_per_shot: usize,
    bits: Vec<u64>,
}

impl SyndromeBatch {
    /// Clears and resizes the batch for `num_shots` shots of
    /// `num_detectors` detectors, reusing the allocation; all bits are
    /// zero afterwards. Samplers that produce shot-major bits natively
    /// (the compiled DEM sampler) write in on top.
    pub fn reset(&mut self, num_shots: usize, num_detectors: usize) {
        self.num_shots = num_shots;
        self.num_detectors = num_detectors;
        self.words_per_shot = num_detectors.div_ceil(64);
        self.bits.clear();
        self.bits.resize(num_shots * self.words_per_shot, 0);
    }

    /// Mutable access to the raw shot-major words plus the per-shot
    /// stride, for in-crate samplers.
    pub(crate) fn rows_mut(&mut self) -> (&mut [u64], usize) {
        (&mut self.bits, self.words_per_shot)
    }

    /// Read access to the raw shot-major words plus the per-shot stride,
    /// for in-crate samplers.
    pub(crate) fn rows(&self) -> (&[u64], usize) {
        (&self.bits, self.words_per_shot)
    }

    /// Sets detector `d` of shot `s`. Mostly useful for building reference
    /// batches by hand (tests, batch-vs-per-shot equivalence checks);
    /// samplers write whole shot-major words instead.
    pub fn set_detector(&mut self, s: usize, d: usize) {
        assert!(s < self.num_shots && d < self.num_detectors);
        self.bits[s * self.words_per_shot + d / 64] |= 1u64 << (d % 64);
    }

    /// Shifts every shot row right by `bits` bit positions (detector `d`
    /// moves to `d - bits`; the lowest `bits` detectors fall off, the top
    /// fills with zeros). This is the roll of the streaming sampler's
    /// resident window when a time layer is finalized.
    pub(crate) fn shift_rows_down(&mut self, bits: usize) {
        let w = self.words_per_shot;
        if w == 0 || bits == 0 {
            return;
        }
        let (skip, rot) = (bits / 64, bits % 64);
        for row in self.bits.chunks_exact_mut(w) {
            for i in 0..w {
                let lo = if i + skip < w { row[i + skip] } else { 0 };
                row[i] = if rot == 0 {
                    lo
                } else {
                    let hi = if i + skip + 1 < w {
                        row[i + skip + 1]
                    } else {
                        0
                    };
                    (lo >> rot) | (hi << (64 - rot))
                };
            }
        }
    }

    /// Number of shots.
    pub fn num_shots(&self) -> usize {
        self.num_shots
    }

    /// Number of detectors per shot.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// The value of detector `d` in shot `s`.
    pub fn detector(&self, s: usize, d: usize) -> bool {
        assert!(s < self.num_shots && d < self.num_detectors);
        (self.bits[s * self.words_per_shot + d / 64] >> (d % 64)) & 1 == 1
    }

    /// Writes the indices of detectors that fired in shot `s` into `out`
    /// (cleared first), skipping empty words via `u64::trailing_zeros`.
    /// Performs no heap allocation once `out` has grown to the largest
    /// syndrome seen.
    pub fn fired_into(&self, s: usize, out: &mut Vec<u32>) {
        assert!(s < self.num_shots);
        out.clear();
        let row = &self.bits[s * self.words_per_shot..(s + 1) * self.words_per_shot];
        for (w, &word) in row.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let d = (w * 64) as u32 + word.trailing_zeros();
                out.push(d);
                word &= word - 1;
            }
        }
    }
}

/// In-place transpose of a 64×64 bit matrix (`a[i]` bit `j` ↔ `a[j]` bit
/// `i`), by recursive block swaps.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            if k & j == 0 {
                let t = ((a[k] >> j) ^ a[k + j]) & m;
                a[k] ^= t << j;
                a[k + j] ^= t;
            }
            k += 1;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// The batched Pauli-frame simulator.
///
/// # Example
///
/// ```
/// use raa_stabsim::circuit::{Circuit, MeasRecord};
/// use raa_stabsim::frame::FrameSim;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new();
/// c.r(&[0]);
/// c.x_error(&[0], 0.25);
/// c.m(&[0]);
/// c.detector(&[MeasRecord::back(1)]);
/// let mut rng = StdRng::seed_from_u64(1);
/// let samples = FrameSim::sample(&c, 10_000, &mut rng);
/// let fired: usize = (0..10_000).filter(|&s| samples.detector(s, 0)).count();
/// assert!((fired as f64 / 10_000.0 - 0.25).abs() < 0.02);
/// ```
#[derive(Debug, Default)]
pub struct FrameSim {
    num_qubits: usize,
    num_shots: usize,
    words: usize,
    /// X frame bits, qubit-major: `x[q * words + w]`.
    x: Vec<u64>,
    /// Z frame bits.
    z: Vec<u64>,
    /// Measurement flip bits, measurement-major.
    meas: Vec<u64>,
    tail_mask: u64,
}

impl FrameSim {
    /// Number of qubits tracked.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of shots in the batch.
    pub fn num_shots(&self) -> usize {
        self.num_shots
    }

    fn reset(&mut self, num_qubits: usize, num_shots: usize) {
        assert!(num_shots > 0, "need at least one shot");
        let words = num_shots.div_ceil(64);
        let rem = num_shots % 64;
        self.num_qubits = num_qubits;
        self.num_shots = num_shots;
        self.words = words;
        self.x.clear();
        self.x.resize(num_qubits * words, 0);
        self.z.clear();
        self.z.resize(num_qubits * words, 0);
        self.meas.clear();
        self.tail_mask = if rem == 0 { !0 } else { (1u64 << rem) - 1 };
    }

    fn run<R: Rng>(&mut self, circuit: &Circuit, num_shots: usize, rng: &mut R) {
        self.reset(circuit.num_qubits() as usize, num_shots);
        for op in circuit.ops() {
            self.apply(op, rng);
        }
    }

    /// Samples `num_shots` shots of `circuit`, returning detector/observable flips.
    pub fn sample<R: Rng>(circuit: &Circuit, num_shots: usize, rng: &mut R) -> DetectorSamples {
        let mut sim = Self::default();
        let mut out = DetectorSamples::default();
        sim.sample_into(circuit, num_shots, rng, &mut out);
        out
    }

    /// Like [`FrameSim::sample`], but reuses both this simulator's frame
    /// buffers and `out`'s bit planes: steady-state batch loops perform no
    /// heap allocation.
    pub fn sample_into<R: Rng>(
        &mut self,
        circuit: &Circuit,
        num_shots: usize,
        rng: &mut R,
        out: &mut DetectorSamples,
    ) {
        self.run(circuit, num_shots, rng);
        self.collect_into(circuit, out);
    }

    /// Samples raw measurement-flip bits (relative to the noiseless
    /// reference) for `num_shots` shots, bit-packed 64 shots per word.
    pub fn sample_measurement_flips<R: Rng>(
        circuit: &Circuit,
        num_shots: usize,
        rng: &mut R,
    ) -> MeasurementFlips {
        let mut sim = Self::default();
        sim.run(circuit, num_shots, rng);
        MeasurementFlips {
            num_shots,
            num_measurements: circuit.num_measurements(),
            words_per_row: sim.words,
            bits: std::mem::take(&mut sim.meas),
        }
    }

    #[inline]
    fn row(buf: &mut [u64], q: usize, words: usize) -> &mut [u64] {
        &mut buf[q * words..(q + 1) * words]
    }

    fn apply<R: Rng>(&mut self, op: &crate::circuit::Operation, rng: &mut R) {
        use OpKind::*;
        let w = self.words;
        match op.kind {
            Tick | X | Y | Z => {}
            H => {
                for &q in &op.targets {
                    let q = q as usize;
                    for i in 0..w {
                        let xv = self.x[q * w + i];
                        let zv = self.z[q * w + i];
                        self.x[q * w + i] = zv;
                        self.z[q * w + i] = xv;
                    }
                }
            }
            S | SDag => {
                // X → ±Y: the Z component toggles wherever X is set.
                for &q in &op.targets {
                    let q = q as usize;
                    for i in 0..w {
                        self.z[q * w + i] ^= self.x[q * w + i];
                    }
                }
            }
            SqrtX | SqrtXDag => {
                // Z → ±Y: the X component toggles wherever Z is set.
                for &q in &op.targets {
                    let q = q as usize;
                    for i in 0..w {
                        self.x[q * w + i] ^= self.z[q * w + i];
                    }
                }
            }
            CX => {
                for pair in op.targets.chunks_exact(2) {
                    let (c, t) = (pair[0] as usize, pair[1] as usize);
                    for i in 0..w {
                        self.x[t * w + i] ^= self.x[c * w + i];
                        self.z[c * w + i] ^= self.z[t * w + i];
                    }
                }
            }
            CZ => {
                for pair in op.targets.chunks_exact(2) {
                    let (a, b) = (pair[0] as usize, pair[1] as usize);
                    for i in 0..w {
                        self.z[a * w + i] ^= self.x[b * w + i];
                        self.z[b * w + i] ^= self.x[a * w + i];
                    }
                }
            }
            Swap => {
                for pair in op.targets.chunks_exact(2) {
                    let (a, b) = (pair[0] as usize, pair[1] as usize);
                    for i in 0..w {
                        self.x.swap(a * w + i, b * w + i);
                        self.z.swap(a * w + i, b * w + i);
                    }
                }
            }
            R => {
                for &q in &op.targets {
                    let q = q as usize;
                    Self::row(&mut self.x, q, w).fill(0);
                    Self::row(&mut self.z, q, w).fill(0);
                }
            }
            RX => {
                for &q in &op.targets {
                    let q = q as usize;
                    Self::row(&mut self.x, q, w).fill(0);
                    Self::row(&mut self.z, q, w).fill(0);
                }
            }
            M => {
                for &q in &op.targets {
                    let q = q as usize;
                    let start = self.meas.len();
                    self.meas.extend_from_slice(&self.x[q * w..(q + 1) * w]);
                    self.mask_tail(start);
                    // A residual Z frame on a collapsed qubit is unphysical.
                    Self::row(&mut self.z, q, w).fill(0);
                }
            }
            MX => {
                for &q in &op.targets {
                    let q = q as usize;
                    let start = self.meas.len();
                    self.meas.extend_from_slice(&self.z[q * w..(q + 1) * w]);
                    self.mask_tail(start);
                    Self::row(&mut self.x, q, w).fill(0);
                }
            }
            MR => {
                for &q in &op.targets {
                    let q = q as usize;
                    let start = self.meas.len();
                    self.meas.extend_from_slice(&self.x[q * w..(q + 1) * w]);
                    self.mask_tail(start);
                    Self::row(&mut self.x, q, w).fill(0);
                    Self::row(&mut self.z, q, w).fill(0);
                }
            }
            XError => self.pauli_noise(op, rng, true, false),
            ZError => self.pauli_noise(op, rng, false, true),
            YError => self.pauli_noise(op, rng, true, true),
            Depolarize1 => {
                let p = op.arg;
                let trials = op.targets.len() * self.num_shots;
                let targets = op.targets.clone();
                let w = self.words;
                for_each_hit(p, trials, rng, |hit, rng| {
                    let q = targets[hit / self.num_shots] as usize;
                    let s = hit % self.num_shots;
                    let which = rng.random_range(1..4u32);
                    if which & 1 != 0 {
                        self.x[q * w + s / 64] ^= 1 << (s % 64);
                    }
                    if which & 2 != 0 {
                        self.z[q * w + s / 64] ^= 1 << (s % 64);
                    }
                });
            }
            Depolarize2 => {
                let p = op.arg;
                let pairs = op.targets.len() / 2;
                let trials = pairs * self.num_shots;
                let targets = op.targets.clone();
                let w = self.words;
                for_each_hit(p, trials, rng, |hit, rng| {
                    let pair = hit / self.num_shots;
                    let s = hit % self.num_shots;
                    let (a, b) = (targets[2 * pair] as usize, targets[2 * pair + 1] as usize);
                    let which = rng.random_range(1..16u32);
                    if which & 1 != 0 {
                        self.x[a * w + s / 64] ^= 1 << (s % 64);
                    }
                    if which & 2 != 0 {
                        self.z[a * w + s / 64] ^= 1 << (s % 64);
                    }
                    if which & 4 != 0 {
                        self.x[b * w + s / 64] ^= 1 << (s % 64);
                    }
                    if which & 8 != 0 {
                        self.z[b * w + s / 64] ^= 1 << (s % 64);
                    }
                });
            }
        }
    }

    fn mask_tail(&mut self, row_start: usize) {
        let w = self.words;
        self.meas[row_start + w - 1] &= self.tail_mask;
    }

    fn pauli_noise<R: Rng>(
        &mut self,
        op: &crate::circuit::Operation,
        rng: &mut R,
        flip_x: bool,
        flip_z: bool,
    ) {
        let p = op.arg;
        let trials = op.targets.len() * self.num_shots;
        let targets = op.targets.clone();
        let w = self.words;
        for_each_hit(p, trials, rng, |hit, _rng| {
            let q = targets[hit / self.num_shots] as usize;
            let s = hit % self.num_shots;
            if flip_x {
                self.x[q * w + s / 64] ^= 1 << (s % 64);
            }
            if flip_z {
                self.z[q * w + s / 64] ^= 1 << (s % 64);
            }
        });
    }

    fn collect_into(&self, circuit: &Circuit, out: &mut DetectorSamples) {
        let w = self.words;
        let nd = circuit.num_detectors();
        let no = circuit.num_observables();
        // `observable_mask` packs observables into a u64; `reset` enforces
        // the ≤64-observables invariant here, at construction, instead of
        // silently truncating bits at read time.
        out.reset(self.num_shots, nd, no);
        let (detectors, observables, _) = out.planes_mut();
        for (d, meas_list) in circuit.detectors().iter().enumerate() {
            for &m in meas_list {
                for i in 0..w {
                    detectors[d * w + i] ^= self.meas[m * w + i];
                }
            }
        }
        for (o, meas_list) in circuit.observables().iter().enumerate() {
            for &m in meas_list {
                for i in 0..w {
                    observables[o * w + i] ^= self.meas[m * w + i];
                }
            }
        }
    }
}

/// Bit-packed raw measurement-flip samples: row `m` holds measurement `m`,
/// 64 shots per word, as produced by [`FrameSim::sample_measurement_flips`].
///
/// Replaces the historical `Vec<Vec<bool>>` return type (one heap row per
/// measurement, one byte per bit) with the same shot-packed `u64` layout the
/// rest of the sampling pipeline uses.
#[derive(Debug, Clone, Default)]
pub struct MeasurementFlips {
    num_shots: usize,
    num_measurements: usize,
    words_per_row: usize,
    /// Measurement-major bit matrix: row `m`, word `w` at
    /// `m * words_per_row + w`.
    bits: Vec<u64>,
}

impl MeasurementFlips {
    /// Number of shots per measurement.
    pub fn num_shots(&self) -> usize {
        self.num_shots
    }

    /// Number of measurements per shot.
    pub fn num_measurements(&self) -> usize {
        self.num_measurements
    }

    /// Whether measurement `m` flipped (relative to the noiseless
    /// reference) in shot `s`.
    pub fn flipped(&self, s: usize, m: usize) -> bool {
        assert!(s < self.num_shots && m < self.num_measurements);
        (self.bits[m * self.words_per_row + s / 64] >> (s % 64)) & 1 == 1
    }
}

/// Calls `f(hit_index, rng)` for each Bernoulli(p) success among `trials`
/// independent trials, using geometric skip sampling: expected cost is
/// O(p · trials) rather than O(trials). The compiled DEM sampler
/// ([`crate::dem_sampler`]) uses the same construction but its own
/// ziggurat-based walk — the two are independent implementations.
fn for_each_hit<R: Rng>(p: f64, trials: usize, rng: &mut R, mut f: impl FnMut(usize, &mut R)) {
    if trials == 0 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..trials {
            f(i, rng);
        }
        return;
    }
    let log_q = (1.0 - p).ln();
    let mut i = 0usize;
    loop {
        let u: f64 = rng.random();
        // Number of failures before the next success.
        let skip = if u <= 0.0 {
            usize::MAX
        } else {
            let s = (u.ln() / log_q).floor();
            if s >= trials as f64 {
                usize::MAX
            } else {
                s as usize
            }
        };
        if skip == usize::MAX || i.saturating_add(skip) >= trials {
            return;
        }
        i += skip;
        f(i, rng);
        i += 1;
        if i >= trials {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Circuit, MeasRecord};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEADBEEF)
    }

    #[test]
    fn no_noise_means_no_flips() {
        let mut c = Circuit::new();
        c.r(&[0, 1]);
        c.h(&[0]);
        c.cx(&[(0, 1)]);
        c.m(&[0, 1]);
        c.detector(&[MeasRecord::back(1), MeasRecord::back(2)]);
        let s = FrameSim::sample(&c, 256, &mut rng());
        for shot in 0..256 {
            assert!(!s.detector(shot, 0));
        }
    }

    #[test]
    fn certain_x_error_flips_measurement() {
        let mut c = Circuit::new();
        c.r(&[0]);
        c.x_error(&[0], 1.0);
        c.m(&[0]);
        c.detector(&[MeasRecord::back(1)]);
        let s = FrameSim::sample(&c, 100, &mut rng());
        for shot in 0..100 {
            assert!(s.detector(shot, 0));
        }
    }

    #[test]
    fn z_error_invisible_to_z_measurement() {
        let mut c = Circuit::new();
        c.r(&[0]);
        c.z_error(&[0], 1.0);
        c.m(&[0]);
        c.detector(&[MeasRecord::back(1)]);
        let s = FrameSim::sample(&c, 64, &mut rng());
        for shot in 0..64 {
            assert!(!s.detector(shot, 0));
        }
    }

    #[test]
    fn z_error_flips_x_measurement() {
        let mut c = Circuit::new();
        c.rx(&[0]);
        c.z_error(&[0], 1.0);
        c.mx(&[0]);
        c.detector(&[MeasRecord::back(1)]);
        let s = FrameSim::sample(&c, 64, &mut rng());
        for shot in 0..64 {
            assert!(s.detector(shot, 0));
        }
    }

    #[test]
    fn error_propagates_through_cx() {
        // X on control before CX flips both measurements; detector on the
        // pair (parity) stays silent while individual detectors fire.
        let mut c = Circuit::new();
        c.r(&[0, 1]);
        c.x_error(&[0], 1.0);
        c.cx(&[(0, 1)]);
        c.m(&[0, 1]);
        c.detector(&[MeasRecord::back(2)]);
        c.detector(&[MeasRecord::back(1)]);
        c.detector(&[MeasRecord::back(1), MeasRecord::back(2)]);
        let s = FrameSim::sample(&c, 64, &mut rng());
        for shot in 0..64 {
            assert!(s.detector(shot, 0));
            assert!(s.detector(shot, 1));
            assert!(!s.detector(shot, 2));
        }
    }

    #[test]
    fn hadamard_exchanges_x_and_z_frames() {
        let mut c = Circuit::new();
        c.r(&[0]);
        c.z_error(&[0], 1.0);
        c.h(&[0]);
        c.m(&[0]); // Z frame became X frame: flip visible
        c.detector(&[MeasRecord::back(1)]);
        let s = FrameSim::sample(&c, 64, &mut rng());
        for shot in 0..64 {
            assert!(s.detector(shot, 0));
        }
    }

    #[test]
    fn reset_clears_frames() {
        let mut c = Circuit::new();
        c.r(&[0]);
        c.x_error(&[0], 1.0);
        c.r(&[0]);
        c.m(&[0]);
        c.detector(&[MeasRecord::back(1)]);
        let s = FrameSim::sample(&c, 64, &mut rng());
        for shot in 0..64 {
            assert!(!s.detector(shot, 0));
        }
    }

    #[test]
    fn x_error_rate_statistics() {
        let mut c = Circuit::new();
        c.r(&[0]);
        c.x_error(&[0], 0.1);
        c.m(&[0]);
        c.detector(&[MeasRecord::back(1)]);
        let shots = 100_000;
        let s = FrameSim::sample(&c, shots, &mut rng());
        let hits: usize = (0..shots).filter(|&i| s.detector(i, 0)).count();
        let rate = hits as f64 / shots as f64;
        assert!((rate - 0.1).abs() < 0.005, "rate = {rate}");
    }

    #[test]
    fn depolarize1_marginals() {
        // Each of X, Y, Z occurs with p/3; Z-measurement flips see X and Y: 2p/3.
        let mut c = Circuit::new();
        c.r(&[0]);
        c.depolarize1(&[0], 0.3);
        c.m(&[0]);
        c.detector(&[MeasRecord::back(1)]);
        let shots = 100_000;
        let s = FrameSim::sample(&c, shots, &mut rng());
        let rate = (0..shots).filter(|&i| s.detector(i, 0)).count() as f64 / shots as f64;
        assert!((rate - 0.2).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn depolarize2_marginals() {
        // 15 Paulis each p/15; those with X or Y on the first qubit: 8 of 15.
        let mut c = Circuit::new();
        c.r(&[0, 1]);
        c.depolarize2(&[(0, 1)], 0.15);
        c.m(&[0]);
        c.detector(&[MeasRecord::back(1)]);
        let shots = 200_000;
        let s = FrameSim::sample(&c, shots, &mut rng());
        let rate = (0..shots).filter(|&i| s.detector(i, 0)).count() as f64 / shots as f64;
        let expect = 0.15 * 8.0 / 15.0;
        assert!(
            (rate - expect).abs() < 0.01,
            "rate = {rate}, expect {expect}"
        );
    }

    #[test]
    fn observables_collected() {
        let mut c = Circuit::new();
        c.r(&[0]);
        c.x_error(&[0], 1.0);
        c.m(&[0]);
        c.observable_include(0, &[MeasRecord::back(1)]);
        let s = FrameSim::sample(&c, 64, &mut rng());
        assert_eq!(s.num_observables(), 1);
        for shot in 0..64 {
            assert!(s.observable(shot, 0));
            assert_eq!(s.observable_mask(shot), 1);
        }
        assert_eq!(s.logical_error_rate(), 1.0);
    }

    #[test]
    fn fired_detectors_lists_syndrome() {
        let mut c = Circuit::new();
        c.r(&[0, 1]);
        c.x_error(&[0], 1.0);
        c.m(&[0, 1]);
        c.detector(&[MeasRecord::back(2)]);
        c.detector(&[MeasRecord::back(1)]);
        let s = FrameSim::sample(&c, 1, &mut rng());
        assert_eq!(s.fired_detectors(0), vec![0]);
    }

    #[test]
    fn geometric_sampler_hits_all_at_p1() {
        let mut hits = Vec::new();
        for_each_hit(1.0, 5, &mut rng(), |i, _| hits.push(i));
        assert_eq!(hits, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn geometric_sampler_statistics() {
        let mut count = 0usize;
        let trials = 1_000_000;
        for_each_hit(0.01, trials, &mut rng(), |_, _| count += 1);
        let rate = count as f64 / trials as f64;
        assert!((rate - 0.01).abs() < 0.001, "rate = {rate}");
    }

    #[test]
    fn transpose64_is_a_transpose() {
        let mut rng = rng();
        let mut a = [0u64; 64];
        for w in a.iter_mut() {
            *w = rng.random();
        }
        let original = a;
        transpose64(&mut a);
        for (j, &col) in a.iter().enumerate() {
            for (i, &row) in original.iter().enumerate() {
                assert_eq!((col >> i) & 1, (row >> j) & 1, "({i}, {j})");
            }
        }
        // Transposing twice is the identity.
        transpose64(&mut a);
        assert_eq!(a, original);
    }

    #[test]
    fn syndrome_batch_matches_dense_reads_on_sampled_circuit() {
        // 70 detectors x 100 shots: exercises the ragged tile edges of the
        // 64x64 block transpose in both dimensions.
        let mut c = Circuit::new();
        c.r(&[0]);
        for _ in 0..70 {
            c.x_error(&[0], 0.3);
            c.m(&[0]);
            c.detector(&[MeasRecord::back(1)]);
            c.r(&[0]);
        }
        let shots = 100;
        let s = FrameSim::sample(&c, shots, &mut rng());
        let batch = s.transpose_detectors();
        assert_eq!(batch.num_shots(), shots);
        assert_eq!(batch.num_detectors(), 70);
        let mut sparse = Vec::new();
        for shot in 0..shots {
            batch.fired_into(shot, &mut sparse);
            assert_eq!(sparse, s.fired_detectors(shot), "shot {shot}");
            for d in 0..70 {
                assert_eq!(batch.detector(shot, d), s.detector(shot, d));
            }
        }
    }

    mod sparse_extractor_properties {
        use super::super::{transpose64, SyndromeBatch};
        use proptest::prelude::*;

        /// Builds a shot-major batch directly from raw words.
        fn batch_from_words(
            words: &[u64],
            num_shots: usize,
            num_detectors: usize,
        ) -> SyndromeBatch {
            let wps = num_detectors.div_ceil(64);
            let mut bits = vec![0u64; num_shots * wps];
            let tail = num_detectors % 64;
            let tail_mask = if tail == 0 { !0u64 } else { (1 << tail) - 1 };
            for (i, b) in bits.iter_mut().enumerate() {
                *b = words[i % words.len()];
                if i % wps == wps - 1 {
                    *b &= tail_mask;
                }
            }
            SyndromeBatch {
                num_shots,
                num_detectors,
                words_per_shot: wps,
                bits,
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The word-skipping sparse extractor agrees with dense per-bit
            /// reads on arbitrary bit patterns and ragged sizes.
            #[test]
            fn fired_into_agrees_with_dense_bits(
                words in proptest::collection::vec(any::<u64>(), 1..12),
                num_shots in 1usize..5,
                num_detectors in 1usize..200,
            ) {
                let batch = batch_from_words(&words, num_shots, num_detectors);
                let mut fired = Vec::new();
                for s in 0..num_shots {
                    batch.fired_into(s, &mut fired);
                    let dense: Vec<u32> = (0..num_detectors)
                        .filter(|&d| batch.detector(s, d))
                        .map(|d| d as u32)
                        .collect();
                    prop_assert_eq!(&fired, &dense, "shot {}", s);
                }
            }

            /// transpose64 is an involution and a true bit transpose.
            #[test]
            fn transpose64_involution(words in proptest::collection::vec(any::<u64>(), 64)) {
                let mut a = [0u64; 64];
                a.copy_from_slice(&words);
                let original = a;
                transpose64(&mut a);
                for (j, &col) in a.iter().enumerate() {
                    for (i, &row) in original.iter().enumerate() {
                        prop_assert_eq!((col >> i) & 1, (row >> j) & 1);
                    }
                }
                transpose64(&mut a);
                prop_assert_eq!(a, original);
            }
        }
    }

    /// Cross-validation: frame sampler statistics agree with the exact
    /// tableau simulation on a small noisy circuit.
    #[test]
    fn frame_agrees_with_tableau_statistics() {
        let mut c = Circuit::new();
        c.r(&[0, 1, 2]);
        c.h(&[0]);
        c.depolarize1(&[0, 1], 0.2);
        c.cx(&[(0, 1), (1, 2)]);
        c.depolarize2(&[(0, 1)], 0.1);
        c.m(&[0, 1, 2]);
        // Parity of all three measurements (deterministically 0 without noise:
        // m0 random-but-reference-forced... use m1 ^ m2 which is 0 noiselessly).
        c.detector(&[MeasRecord::back(1), MeasRecord::back(2)]);

        let shots = 200_000;
        let s = FrameSim::sample(&c, shots, &mut rng());
        let frame_rate = (0..shots).filter(|&i| s.detector(i, 0)).count() as f64 / shots as f64;

        let mut tab_rate = 0.0;
        let mut r = rng();
        let tab_shots = 20_000;
        for _ in 0..tab_shots {
            let rec = crate::tableau::TableauSim::sample(&c, &mut r);
            if rec[1] ^ rec[2] {
                tab_rate += 1.0;
            }
        }
        tab_rate /= tab_shots as f64;
        assert!(
            (frame_rate - tab_rate).abs() < 0.015,
            "frame {frame_rate} vs tableau {tab_rate}"
        );
    }
}
