//! Sparse Pauli strings (sign-free), used for error propagation and code analysis.

use std::collections::BTreeSet;
use std::fmt;

/// A single-qubit Pauli, encoded as (x-bit, z-bit): `I=(0,0)`, `X=(1,0)`, `Z=(0,1)`, `Y=(1,1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// The (x, z) bit pair of this Pauli.
    pub fn bits(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Reconstructs a Pauli from its (x, z) bit pair.
    pub fn from_bits(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Whether this Pauli commutes with `other`.
    pub fn commutes_with(self, other: Pauli) -> bool {
        let (x1, z1) = self.bits();
        let (x2, z2) = other.bits();
        // Symplectic product: anticommute iff x1·z2 + z1·x2 is odd.
        !((x1 & z2) ^ (z1 & x2))
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// A sparse multi-qubit Pauli string, ignoring global phase.
///
/// Stored as the set of qubits with an X component and the set with a Z
/// component (a qubit in both sets carries Y).
///
/// # Example
///
/// ```
/// use raa_stabsim::pauli::{Pauli, PauliString};
///
/// let mut p = PauliString::new();
/// p.set(0, Pauli::X);
/// p.set(1, Pauli::Z);
/// let mut q = PauliString::new();
/// q.set(0, Pauli::Z);
/// assert!(!p.commutes_with(&q));
/// assert_eq!(p.weight(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PauliString {
    xs: BTreeSet<u32>,
    zs: BTreeSet<u32>,
}

impl PauliString {
    /// The identity string.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a string from `(qubit, pauli)` pairs; later pairs multiply in.
    pub fn from_pairs<I: IntoIterator<Item = (u32, Pauli)>>(pairs: I) -> Self {
        let mut s = Self::new();
        for (q, p) in pairs {
            s.mul_pauli(q, p);
        }
        s
    }

    /// Builds an X-type string supported on `qubits`.
    pub fn x_on<I: IntoIterator<Item = u32>>(qubits: I) -> Self {
        Self::from_pairs(qubits.into_iter().map(|q| (q, Pauli::X)))
    }

    /// Builds a Z-type string supported on `qubits`.
    pub fn z_on<I: IntoIterator<Item = u32>>(qubits: I) -> Self {
        Self::from_pairs(qubits.into_iter().map(|q| (q, Pauli::Z)))
    }

    /// Sets (overwrites) the Pauli at `qubit`.
    pub fn set(&mut self, qubit: u32, pauli: Pauli) {
        let (x, z) = pauli.bits();
        if x {
            self.xs.insert(qubit);
        } else {
            self.xs.remove(&qubit);
        }
        if z {
            self.zs.insert(qubit);
        } else {
            self.zs.remove(&qubit);
        }
    }

    /// The Pauli at `qubit`.
    pub fn get(&self, qubit: u32) -> Pauli {
        Pauli::from_bits(self.xs.contains(&qubit), self.zs.contains(&qubit))
    }

    /// Multiplies the given single-qubit Pauli into this string (phase dropped).
    pub fn mul_pauli(&mut self, qubit: u32, pauli: Pauli) {
        let (x, z) = pauli.bits();
        if x && !self.xs.remove(&qubit) {
            self.xs.insert(qubit);
        }
        if z && !self.zs.remove(&qubit) {
            self.zs.insert(qubit);
        }
    }

    /// Multiplies `other` into this string (phase dropped).
    pub fn mul_assign(&mut self, other: &PauliString) {
        for &q in &other.xs {
            if !self.xs.remove(&q) {
                self.xs.insert(q);
            }
        }
        for &q in &other.zs {
            if !self.zs.remove(&q) {
                self.zs.insert(q);
            }
        }
    }

    /// Returns the product `self · other` (phase dropped).
    pub fn product(&self, other: &PauliString) -> PauliString {
        let mut out = self.clone();
        out.mul_assign(other);
        out
    }

    /// Whether this string commutes with `other`.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        // Anticommutation count = |X(self) ∩ Z(other)| + |Z(self) ∩ X(other)| (mod 2).
        let a = self.xs.intersection(&other.zs).count();
        let b = self.zs.intersection(&other.xs).count();
        (a + b).is_multiple_of(2)
    }

    /// Number of qubits with a non-identity Pauli.
    pub fn weight(&self) -> usize {
        self.xs.union(&self.zs).count()
    }

    /// Whether this is the identity string.
    pub fn is_identity(&self) -> bool {
        self.xs.is_empty() && self.zs.is_empty()
    }

    /// Iterates over the `(qubit, pauli)` pairs of the support, in qubit order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Pauli)> + '_ {
        let support: BTreeSet<u32> = self.xs.union(&self.zs).copied().collect();
        support.into_iter().map(move |q| (q, self.get(q)))
    }

    /// The qubits with an X component (including Y).
    pub fn x_support(&self) -> impl Iterator<Item = u32> + '_ {
        self.xs.iter().copied()
    }

    /// The qubits with a Z component (including Y).
    pub fn z_support(&self) -> impl Iterator<Item = u32> + '_ {
        self.zs.iter().copied()
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_identity() {
            return write!(f, "I");
        }
        let mut first = true;
        for (q, p) in self.iter() {
            if !first {
                write!(f, "·")?;
            }
            write!(f, "{p}{q}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_pauli_commutation() {
        assert!(Pauli::X.commutes_with(Pauli::X));
        assert!(!Pauli::X.commutes_with(Pauli::Z));
        assert!(!Pauli::X.commutes_with(Pauli::Y));
        assert!(!Pauli::Y.commutes_with(Pauli::Z));
        assert!(Pauli::I.commutes_with(Pauli::X));
    }

    #[test]
    fn bits_round_trip() {
        for p in [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z] {
            let (x, z) = p.bits();
            assert_eq!(Pauli::from_bits(x, z), p);
        }
    }

    #[test]
    fn multiplication_xor_structure() {
        // X * Z = Y (up to phase)
        let mut s = PauliString::new();
        s.mul_pauli(0, Pauli::X);
        s.mul_pauli(0, Pauli::Z);
        assert_eq!(s.get(0), Pauli::Y);
        // X * X = I
        s.mul_pauli(0, Pauli::Y);
        assert!(s.is_identity());
    }

    #[test]
    fn string_commutation() {
        // XX commutes with ZZ (two anticommuting sites cancel).
        let xx = PauliString::x_on([0, 1]);
        let zz = PauliString::z_on([0, 1]);
        assert!(xx.commutes_with(&zz));
        // XI anticommutes with ZZ? X0 vs Z0Z1: one overlap -> anticommute.
        let xi = PauliString::x_on([0]);
        assert!(!xi.commutes_with(&zz));
    }

    #[test]
    fn weight_and_iter() {
        let p = PauliString::from_pairs([(3, Pauli::Y), (1, Pauli::X), (5, Pauli::Z)]);
        assert_eq!(p.weight(), 3);
        let collected: Vec<_> = p.iter().collect();
        assert_eq!(collected, vec![(1, Pauli::X), (3, Pauli::Y), (5, Pauli::Z)]);
        assert_eq!(p.to_string(), "X1·Y3·Z5");
    }

    proptest! {
        /// Multiplication is an involution: s * t * t = s.
        #[test]
        fn product_involution(qubits in proptest::collection::vec((0u32..16, 0u8..4), 0..12)) {
            let to_pauli = |b: u8| match b { 0 => Pauli::I, 1 => Pauli::X, 2 => Pauli::Y, _ => Pauli::Z };
            let s = PauliString::from_pairs(qubits.iter().map(|&(q, b)| (q, to_pauli(b))));
            let t = PauliString::from_pairs(qubits.iter().rev().map(|&(q, b)| (q, to_pauli(b.wrapping_add(1) % 4))));
            let round = s.product(&t).product(&t);
            prop_assert_eq!(round, s);
        }

        /// Commutation is symmetric.
        #[test]
        fn commutation_symmetric(a in proptest::collection::vec((0u32..8, 0u8..4), 0..8),
                                 b in proptest::collection::vec((0u32..8, 0u8..4), 0..8)) {
            let to_pauli = |v: u8| match v { 0 => Pauli::I, 1 => Pauli::X, 2 => Pauli::Y, _ => Pauli::Z };
            let s = PauliString::from_pairs(a.iter().map(|&(q, v)| (q, to_pauli(v))));
            let t = PauliString::from_pairs(b.iter().map(|&(q, v)| (q, to_pauli(v))));
            prop_assert_eq!(s.commutes_with(&t), t.commutes_with(&s));
        }
    }
}
