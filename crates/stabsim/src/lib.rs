//! Stabilizer circuit simulation substrate for the transversal-architecture
//! reproduction of Zhou et al. (ISCA 2025).
//!
//! The paper's logical-error model (its Eq. 4) is calibrated against
//! circuit-level simulations of transversal logical circuits. This crate
//! provides everything needed to run such simulations from scratch:
//!
//! * [`circuit`] — a stabilizer circuit IR with Clifford gates, resets,
//!   measurements, circuit-level depolarizing noise channels and
//!   detector/observable annotations;
//! * [`tableau`] — an exact Aaronson–Gottesman tableau simulator used as the
//!   noiseless reference and for cross-validation;
//! * [`frame`] — a bit-packed Pauli-frame Monte-Carlo sampler (64 shots per
//!   machine word, geometric skip sampling for noise);
//! * [`dem`] — detector-error-model extraction by reverse sensitivity
//!   propagation, with greedy decomposition into graphlike errors for
//!   matching-style decoders;
//! * [`dem_sampler`] — a compiled DEM sampler that skips circuit
//!   re-simulation entirely: each mechanism is precompiled to a bit-packed
//!   detector/observable footprint and batches are drawn by geometric-skip
//!   Bernoulli walks, O(mechanisms + hits) per batch;
//! * [`pauli`] — sparse Pauli strings for code analysis.
//!
//! # Example: noisy Bell-pair parity
//!
//! ```
//! use raa_stabsim::{Circuit, MeasRecord, FrameSim, DetectorErrorModel};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut c = Circuit::new();
//! c.r(&[0, 1]);
//! c.h(&[0]);
//! c.cx(&[(0, 1)]);
//! c.depolarize2(&[(0, 1)], 1e-2);
//! c.m(&[0, 1]);
//! // The ZZ parity of a Bell pair is deterministic: a valid detector.
//! c.detector(&[MeasRecord::back(1), MeasRecord::back(2)]);
//!
//! let dem = DetectorErrorModel::from_circuit(&c);
//! assert_eq!(dem.num_detectors, 1);
//!
//! let mut rng = StdRng::seed_from_u64(5);
//! let samples = FrameSim::sample(&c, 4096, &mut rng);
//! assert_eq!(samples.num_detectors(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod circuit;
pub mod dem;
pub mod dem_sampler;
pub mod dem_slice;
pub mod frame;
pub mod pauli;
pub mod tableau;
pub mod text;

pub use circuit::{Circuit, MeasRecord, OpKind, Operation};
pub use dem::{DemError, DetectorErrorModel};
pub use dem_sampler::DemSampler;
pub use dem_slice::{
    concat_slices, slice_dem_by_layer, validate_uniform_layers, LayerRing, StreamingDemSampler,
    StreamingScratch,
};
pub use frame::{DetectorSamples, FrameSim, MeasurementFlips, SyndromeBatch};
pub use pauli::{Pauli, PauliString};
pub use tableau::{MeasureResult, TableauSim};
pub use text::{dem_to_text, parse, parse_dem, to_text, ParseError};
