//! Compiled detector-error-model sampler.
//!
//! The Pauli-frame simulator ([`crate::frame::FrameSim`]) re-runs the full
//! circuit op by op for every batch of shots: cost scales with circuit ops ×
//! qubits even though the noise channels have already been propagated into a
//! [`DetectorErrorModel`] for the decoder. [`DemSampler`] precompiles that
//! DEM once — each mechanism becomes a bit-packed detector footprint plus a
//! packed observable mask — and then samples batches by walking each
//! mechanism's Bernoulli stream with the same geometric-skip construction
//! the frame simulator uses for noise, XORing the footprint directly into
//! bit-packed output planes: either the decoder-ready shot-major
//! [`SyndromeBatch`] rows plus per-shot observable masks (the Monte-Carlo
//! hot path, [`DemSampler::sample_syndromes_into`]) or the detector-major
//! [`DetectorSamples`] planes ([`DemSampler::sample_into`], the reference
//! layout shared with [`crate::frame::FrameSim`]).
//!
//! Per batch the cost is O(probability groups + hits × footprint size): no
//! tableau, no gate application, no per-shot branching. Below threshold
//! (hit rate `p · mechanisms` per shot ≪ detectors) this is the difference
//! between re-simulating the circuit and nearly-free sampling, the same
//! precompute trick stim/sinter use.
//!
//! Two structural optimizations keep the walk cost proportional to *hits*
//! rather than *mechanisms*, both distribution-exact:
//!
//! * **probability grouping** — circuit-level DEMs have thousands of
//!   mechanisms but only dozens of distinct probabilities (depolarizing
//!   components share `p/15`, `p/3`, and their XOR-merges). Mechanisms
//!   with bit-identical probability are concatenated into one virtual
//!   Bernoulli trial space walked by a single geometric skip chain, so the
//!   per-mechanism fixed cost (one RNG draw each, even for mechanisms that
//!   never fire in the batch) collapses to one per *group*;
//! * **ziggurat exponentials** — a geometric skip is `⌊E / −ln(1−p)⌋`
//!   with `E ~ Exp(1)`. Instead of the textbook `E = −ln(u)` (a `ln` call
//!   per hit, the dominant cost), `E` is drawn by a 256-layer ziggurat
//!   ([`zexp`]): one `u64` draw plus two table lookups on the ~99% fast
//!   path, identical distribution.
//!
//! The DEM treats mechanisms as independent Bernoulli sources. For X/Y/Z
//! channels this reproduces the circuit distribution *exactly* (mechanisms
//! with identical footprints were XOR-merged at extraction); for
//! depolarizing channels the mutually-exclusive Pauli components become
//! independent mechanisms, an O(p²) approximation — the standard DEM
//! semantics, validated statistically against the frame simulator in
//! `crates/sim/tests/sampler_validation.rs`.

use crate::dem::DetectorErrorModel;
use crate::frame::{DetectorSamples, SyndromeBatch};
use rand::Rng;

/// Shots per walk block: a power of two (so trial→position splits are
/// shifts, not divisions) small enough that `block × words_per_shot`
/// output rows stay L1-resident while sampling. See
/// [`DemSampler::walk_hits`].
const WALK_BLOCK: usize = 512;

/// Mechanisms sharing one firing probability, walked as a single virtual
/// Bernoulli trial space of `mechanism × shot` trials (mechanism-major).
#[derive(Debug, Clone)]
struct ProbGroup {
    /// `1 / −ln(1 − p)`: scales an Exp(1) draw into a geometric skip.
    inv_mu: f64,
    /// `p == 1`: every trial fires, no walk needed.
    certain: bool,
    /// Range into [`DemSampler::by_prob`].
    start: u32,
    end: u32,
}

/// A detector error model compiled for direct Monte-Carlo sampling.
///
/// Construction validates every mechanism once ([`DemSampler::new`] fails
/// loudly on out-of-range detector or observable ids), so sampling itself
/// is branch-free over footprints.
///
/// # Example
///
/// ```
/// use raa_stabsim::{Circuit, MeasRecord, DemSampler, DetectorErrorModel};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new();
/// c.r(&[0]);
/// c.x_error(&[0], 0.25);
/// c.m(&[0]);
/// c.detector(&[MeasRecord::back(1)]);
///
/// let dem = DetectorErrorModel::from_circuit(&c);
/// let sampler = DemSampler::new(&dem);
/// let mut rng = StdRng::seed_from_u64(1);
/// let samples = sampler.sample(10_000, &mut rng);
/// let fired = (0..10_000).filter(|&s| samples.detector(s, 0)).count();
/// assert!((fired as f64 / 10_000.0 - 0.25).abs() < 0.02);
/// ```
#[derive(Debug, Clone)]
pub struct DemSampler {
    num_detectors: usize,
    num_observables: usize,
    /// Per-mechanism firing probability.
    probabilities: Vec<f64>,
    /// Flattened detector footprints: mechanism `i` flips the detectors
    /// `det_ids[det_offsets[i]..det_offsets[i + 1]]`.
    det_offsets: Vec<u32>,
    det_ids: Vec<u32>,
    /// Per-mechanism packed observable mask (observable `o` ↔ bit `o`).
    obs_masks: Vec<u64>,
    /// Mechanism indices reordered so each probability class is contiguous
    /// (zero-probability mechanisms omitted — they can never fire).
    by_prob: Vec<u32>,
    /// The probability classes, in descending-probability order.
    groups: Vec<ProbGroup>,
    /// Per-*position* (i.e. [`DemSampler::by_prob`] order, the order the
    /// walk visits mechanisms) compiled shot-major footprints, one record
    /// per mechanism so a hit touches a single metadata cache line.
    compiled: Vec<CompiledMech>,
    /// Overflow `(word, mask)` XOR targets for the rare mechanisms whose
    /// footprint spans more than two words.
    spill: Vec<(u32, u64)>,
}

/// Shot-major footprint of one mechanism, compiled for the hot writer:
/// XOR `mask[0]`/`mask[1]` into row words `w[0]`/`w[1]` (detectors sharing
/// a word are pre-merged; single-word footprints pad with a no-op
/// `mask = 0`), then the rare `spill_len` extra words, then the packed
/// observable mask.
#[derive(Debug, Clone)]
struct CompiledMech {
    w: [u32; 2],
    mask: [u64; 2],
    obs: u64,
    spill_start: u32,
    spill_len: u32,
}

impl DemSampler {
    /// The sampler's internal shot-block size: `sample_syndromes_into`
    /// walks the trial space in consecutive blocks of this many shots, and
    /// each block's RNG consumption is independent of its position in the
    /// batch. Consequence: sampling `n` shots in consecutive chunks of at
    /// most `SAMPLE_BLOCK` shots through the same RNG yields bit-identical
    /// output to one `n`-shot call — the guarantee the Monte-Carlo
    /// harness's fused sample→decode path relies on.
    pub const SAMPLE_BLOCK: usize = WALK_BLOCK;

    /// Compiles `dem` for sampling.
    ///
    /// # Panics
    ///
    /// Fails loudly on models the packed representation cannot hold —
    /// mirroring the `observable_mask` construction-time assert of the
    /// frame sampler rather than corrupting planes at sample time:
    ///
    /// * more than 64 observables (the `u64` mask limit);
    /// * a mechanism flipping an observable `≥ num_observables`;
    /// * a mechanism flipping a detector `≥ num_detectors`;
    /// * a probability outside `[0, 1]`.
    pub fn new(dem: &DetectorErrorModel) -> Self {
        assert!(
            dem.num_observables <= 64,
            "DemSampler supports at most 64 observables, got {}",
            dem.num_observables
        );
        let obs_limit = if dem.num_observables == 64 {
            !0u64
        } else {
            (1u64 << dem.num_observables) - 1
        };
        let mut probabilities = Vec::with_capacity(dem.len());
        let mut det_offsets = Vec::with_capacity(dem.len() + 1);
        let mut det_ids = Vec::new();
        let mut obs_masks = Vec::with_capacity(dem.len());
        det_offsets.push(0u32);
        for (i, e) in dem.iter().enumerate() {
            assert!(
                e.probability.is_finite() && (0.0..=1.0).contains(&e.probability),
                "mechanism {i}: probability {} outside [0, 1]",
                e.probability
            );
            assert!(
                e.observables & !obs_limit == 0,
                "mechanism {i}: observable mask {:#x} exceeds the model's {} observables",
                e.observables,
                dem.num_observables
            );
            for &d in &e.detectors {
                assert!(
                    (d as usize) < dem.num_detectors,
                    "mechanism {i}: detector id {d} out of range (model has {} detectors)",
                    dem.num_detectors
                );
            }
            probabilities.push(e.probability);
            det_ids.extend_from_slice(&e.detectors);
            det_offsets.push(det_ids.len() as u32);
            obs_masks.push(e.observables);
        }

        // Group mechanisms by bit-identical probability (descending), so
        // sampling pays one walk per probability class instead of one per
        // mechanism. Zero-probability mechanisms never fire: dropped.
        let mut order: Vec<u32> = (0..probabilities.len() as u32)
            .filter(|&i| probabilities[i as usize] > 0.0)
            .collect();
        order.sort_by_key(|&i| std::cmp::Reverse(probabilities[i as usize].to_bits()));
        let mut groups: Vec<ProbGroup> = Vec::new();
        for (pos, &i) in order.iter().enumerate() {
            let p = probabilities[i as usize];
            match groups.last_mut() {
                Some(g)
                    if probabilities[order[g.start as usize] as usize].to_bits() == p.to_bits() =>
                {
                    g.end = pos as u32 + 1;
                }
                _ => groups.push(ProbGroup {
                    // ln_1p for accuracy at tiny p; p == 1 handled by the
                    // `certain` flag (−ln 0 would be ∞).
                    inv_mu: if p >= 1.0 { 0.0 } else { -1.0 / (-p).ln_1p() },
                    certain: p >= 1.0,
                    start: pos as u32,
                    end: pos as u32 + 1,
                }),
            }
        }

        // Compile shot-major footprints in *walk order* (one record per
        // `by_prob` position), so the hot writer streams its metadata
        // forward instead of chasing the DEM's original mechanism order:
        // detector `d` lives in word `d / 64`, bit `d % 64` of a shot row,
        // and detectors of one mechanism sharing a word collapse into a
        // single XOR (the ids are sorted).
        let mut compiled = Vec::with_capacity(order.len());
        let mut spill: Vec<(u32, u64)> = Vec::new();
        for &m in &order {
            let dets =
                &det_ids[det_offsets[m as usize] as usize..det_offsets[m as usize + 1] as usize];
            let mut words: Vec<(u32, u64)> = Vec::new();
            for &d in dets {
                let word = d / 64;
                let bit = 1u64 << (d % 64);
                match words.last_mut() {
                    Some(last) if last.0 == word => last.1 |= bit,
                    _ => words.push((word, bit)),
                }
            }
            let w0 = words.first().copied().unwrap_or((0, 0));
            let w1 = words.get(1).copied().unwrap_or((w0.0, 0));
            let spill_start = spill.len() as u32;
            if words.len() > 2 {
                spill.extend_from_slice(&words[2..]);
            }
            compiled.push(CompiledMech {
                w: [w0.0, w1.0],
                mask: [w0.1, w1.1],
                obs: obs_masks[m as usize],
                spill_start,
                spill_len: (words.len().saturating_sub(2)) as u32,
            });
        }

        Self {
            num_detectors: dem.num_detectors,
            num_observables: dem.num_observables,
            probabilities,
            det_offsets,
            det_ids,
            obs_masks,
            by_prob: order,
            groups,

            compiled,
            spill,
        }
    }

    /// Number of compiled error mechanisms.
    pub fn num_mechanisms(&self) -> usize {
        self.probabilities.len()
    }

    /// Number of detectors per shot.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of observables per shot.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// Firing probability of mechanism `i`.
    pub fn probability(&self, i: usize) -> f64 {
        self.probabilities[i]
    }

    /// The compiled footprint of mechanism `i`: the sorted detector ids it
    /// flips and its packed observable mask.
    pub fn footprint(&self, i: usize) -> (&[u32], u64) {
        let range = self.det_offsets[i] as usize..self.det_offsets[i + 1] as usize;
        (&self.det_ids[range], self.obs_masks[i])
    }

    /// Samples `num_shots` shots, returning detector/observable flips with
    /// the same layout and semantics as [`crate::frame::FrameSim::sample`].
    pub fn sample<R: Rng>(&self, num_shots: usize, rng: &mut R) -> DetectorSamples {
        let mut out = DetectorSamples::default();
        self.sample_into(num_shots, rng, &mut out);
        out
    }

    /// Like [`DemSampler::sample`], but reuses `out`'s bit planes:
    /// steady-state batch loops perform no heap allocation.
    ///
    /// For a given RNG state the output is a pure function of the compiled
    /// model and `num_shots` — probability groups are walked in their
    /// deterministic compile-time order — so batch-seeded callers (the
    /// `raa_decode::mc` pipeline) keep their
    /// bit-identical-across-thread-counts guarantee.
    pub fn sample_into<R: Rng>(&self, num_shots: usize, rng: &mut R, out: &mut DetectorSamples) {
        out.reset(num_shots, self.num_detectors, self.num_observables);
        let (detectors, observables, words) = out.planes_mut();
        self.walk_hits(num_shots, rng, |pos, shot| {
            let m = self.by_prob[pos as usize] as usize;
            let word = shot / 64;
            let bit = 1u64 << (shot % 64);
            let dets =
                &self.det_ids[self.det_offsets[m] as usize..self.det_offsets[m + 1] as usize];
            for &d in dets {
                detectors[d as usize * words + word] ^= bit;
            }
            let mut mask = self.obs_masks[m];
            while mask != 0 {
                let o = mask.trailing_zeros() as usize;
                observables[o * words + word] ^= bit;
                mask &= mask - 1;
            }
        });
    }

    /// Samples `num_shots` shots directly into the decoder-ready shot-major
    /// layout: `syndromes` gets each shot's detector bits (the
    /// [`SyndromeBatch`] the decode pipeline feeds on, no transpose
    /// needed), `obs_masks` gets each shot's packed observable mask. Both
    /// buffers are reused; steady state performs no heap allocation.
    ///
    /// This is the Monte-Carlo hot path: one hit costs one or two word
    /// XORs inside a single shot row (compiled footprints pre-merge
    /// detectors sharing a word), so the cache footprint per hit is a
    /// cache line or two regardless of model size.
    ///
    /// Draws the identical hit sequence as [`DemSampler::sample_into`] for
    /// the same RNG state.
    pub fn sample_syndromes_into<R: Rng>(
        &self,
        num_shots: usize,
        rng: &mut R,
        syndromes: &mut SyndromeBatch,
        obs_masks: &mut Vec<u64>,
    ) {
        syndromes.reset(num_shots, self.num_detectors);
        obs_masks.clear();
        obs_masks.resize(num_shots, 0);
        self.sample_syndromes_accumulate(num_shots, rng, syndromes, obs_masks);
    }

    /// Like [`DemSampler::sample_syndromes_into`], but XOR-accumulates on
    /// top of `syndromes`/`obs_masks` instead of clearing them first. The
    /// buffers must already be sized: `syndromes` reset for exactly
    /// `num_shots` shots of this model's detector count, `obs_masks` one
    /// entry per shot.
    ///
    /// This is the building block of the streaming (time-sliced) sampler,
    /// where several slice samplers write into one rolling resident
    /// window: bits deposited by earlier slices (boundary mechanisms
    /// spilling forward in time) must survive.
    ///
    /// # Panics
    ///
    /// Panics if the buffers are not sized as described.
    pub fn sample_syndromes_accumulate<R: Rng>(
        &self,
        num_shots: usize,
        rng: &mut R,
        syndromes: &mut SyndromeBatch,
        obs_masks: &mut [u64],
    ) {
        assert_eq!(
            (syndromes.num_shots(), syndromes.num_detectors()),
            (num_shots, self.num_detectors),
            "syndrome batch not sized for this sampler"
        );
        assert_eq!(obs_masks.len(), num_shots, "one observable mask per shot");
        let (rows, wps) = syndromes.rows_mut();
        if wps == 0 {
            // Detector-free model: only observable flips to record.
            self.walk_hits(num_shots, rng, |pos, shot| {
                let obs = self.compiled[pos as usize].obs;
                if obs != 0 {
                    obs_masks[shot] ^= obs;
                }
            });
            return;
        }
        self.walk_hits(num_shots, rng, |pos, shot| {
            let cm = &self.compiled[pos as usize];
            let row = shot * wps;
            // Two unconditional XORs cover ≤ 2-word footprints branch-free
            // (single-word footprints carry a no-op second mask).
            rows[row + cm.w[0] as usize] ^= cm.mask[0];
            rows[row + cm.w[1] as usize] ^= cm.mask[1];
            if cm.spill_len != 0 {
                let range = cm.spill_start as usize..(cm.spill_start + cm.spill_len) as usize;
                for &(word, mask) in &self.spill[range] {
                    rows[row + word as usize] ^= mask;
                }
            }
            // Most mechanisms flip no observable: skip the read-modify-
            // write (and its cache line) unless needed.
            if cm.obs != 0 {
                obs_masks[shot] ^= cm.obs;
            }
        });
    }

    /// Runs the geometric-skip Bernoulli walk for one batch, calling
    /// `hit(mechanism, shot)` for every mechanism firing. Shots are
    /// processed in fixed [`WALK_BLOCK`]-shot blocks — small enough that a
    /// block's output rows stay L1-resident for the shot-major writer, and
    /// a compile-time power of two so the per-hit trial→(mechanism, shot)
    /// split compiles to shifts instead of 64-bit divisions (which
    /// otherwise dominate the walk). Within a block each probability group
    /// walks its concatenated `mechanisms × block` trial space
    /// (mechanism-major, shot-minor) with one skip chain — a skip of k
    /// trials is k Bernoulli misses, so the per-trial process is exact.
    fn walk_hits<R: Rng>(&self, num_shots: usize, rng: &mut R, mut hit: impl FnMut(u32, usize)) {
        let zt = zexp::tables();
        let mut base = 0usize;
        while base < num_shots {
            let len = WALK_BLOCK.min(num_shots - base);
            if len == WALK_BLOCK {
                // Constant-propagated instantiation: `/ len`, `% len` and
                // `* len` become shifts.
                self.walk_block(zt, rng, base, WALK_BLOCK, &mut hit);
            } else {
                self.walk_block(zt, rng, base, len, &mut hit);
            }
            base += len;
        }
    }

    /// One block of the walk; see [`DemSampler::walk_hits`]. Calls
    /// `hit(position, shot)` with the *walk position* (the `by_prob` /
    /// `compiled` index of the firing mechanism). Marked `inline(always)`
    /// so the `len == WALK_BLOCK` call site specializes on the constant.
    #[inline(always)]
    fn walk_block<R: Rng>(
        &self,
        zt: &zexp::Tables,
        rng: &mut R,
        base: usize,
        len: usize,
        hit: &mut impl FnMut(u32, usize),
    ) {
        for g in &self.groups {
            let count = (g.end - g.start) as usize;
            if g.certain {
                for pos in g.start..g.end {
                    for shot in base..base + len {
                        hit(pos, shot);
                    }
                }
                continue;
            }
            let mut mech_i = 0usize;
            let mut shot = 0usize;
            loop {
                // `as usize` saturates, so astronomically long skips (tiny
                // p) safely compare as "past the end".
                let skip = (zexp::sample_with(zt, rng) * g.inv_mu) as usize;
                // Trials left including the current position.
                let remaining = (count - mech_i) * len - shot;
                if skip >= remaining {
                    break;
                }
                shot += skip;
                if shot >= len {
                    mech_i += shot / len;
                    shot %= len;
                }
                hit(g.start + mech_i as u32, base + shot);
                shot += 1;
                if shot == len {
                    shot = 0;
                    mech_i += 1;
                    if mech_i == count {
                        break;
                    }
                }
            }
        }
    }

    /// Deterministically injects mechanism `i` into shot `shot` of `out`
    /// (XORing its footprint), for tests and debugging. `out` must already
    /// be sized by a sampling call or [`DetectorSamples::reset`].
    pub fn inject_into(&self, i: usize, shot: usize, out: &mut DetectorSamples) {
        assert!(shot < out.num_shots(), "shot {shot} out of range");
        assert_eq!(
            (out.num_detectors(), out.num_observables()),
            (self.num_detectors, self.num_observables),
            "output planes sized for a different model"
        );
        let (dets, obs) = (
            self.det_offsets[i] as usize..self.det_offsets[i + 1] as usize,
            self.obs_masks[i],
        );
        let (detectors, observables, words) = out.planes_mut();
        let word = shot / 64;
        let bit = 1u64 << (shot % 64);
        for idx in dets {
            detectors[self.det_ids[idx] as usize * words + word] ^= bit;
        }
        let mut mask = obs;
        while mask != 0 {
            let o = mask.trailing_zeros() as usize;
            observables[o * words + word] ^= bit;
            mask &= mask - 1;
        }
    }
}

/// Exact Exp(1) sampling by the 256-layer ziggurat of Marsaglia & Tsang,
/// used to turn one cheap `u64` draw into a geometric skip (a geometric
/// with success probability `p` is `⌊E · inv_mu⌋`, `E ~ Exp(1)`,
/// `inv_mu = 1 / −ln(1−p)`). The textbook `E = −ln(u)` costs a `ln` per
/// hit; the ziggurat accepts ~98.9% of draws with two table lookups and a
/// compare, falling back to the wedge/tail (one `exp`/`ln`) on the rest.
/// The returned distribution is exactly Exp(1) either way.
mod zexp {
    use rand::Rng;
    use std::sync::OnceLock;

    /// Right edge of the base layer: x₁ = R.
    const R: f64 = 7.697117470131487;
    /// Common layer area V.
    #[allow(clippy::excessive_precision)]
    const V: f64 = 0.003_949_659_822_581_557_199_3;
    /// 2⁻⁵³, to turn 53 random bits into a uniform in [0, 1).
    const U53: f64 = 1.0 / (1u64 << 53) as f64;

    pub(super) struct Tables {
        /// x[0] = V·eᴿ (virtual base width), x[1] = R, …, x[256] = 0;
        /// strictly decreasing.
        x: [f64; 257],
        /// f[i] = e^(−x[i]); strictly increasing to f[256] = 1.
        f: [f64; 257],
        /// x[i] · 2⁻⁵³: turns the raw 53-bit uniform integer into
        /// `u · x[i]` with one multiply.
        x_scaled: [f64; 256],
        /// ⌊x[i+1] / x[i] · 2⁵³⌋: integer fast-path acceptance threshold —
        /// `u_bits < k[i]` implies `u · x[i] < x[i+1]` (boundary cases
        /// within one ulp fall through to the wedge test, which accepts
        /// any x below the curve, so the distribution is unchanged).
        k: [u64; 256],
    }

    pub(super) fn tables() -> &'static Tables {
        static TABLES: OnceLock<Tables> = OnceLock::new();
        TABLES.get_or_init(|| {
            let mut x = [0.0f64; 257];
            let mut f = [0.0f64; 257];
            x[0] = V * R.exp();
            x[1] = R;
            f[0] = (-x[0]).exp();
            f[1] = (-x[1]).exp();
            for i in 1..256 {
                // Layer i spans y ∈ [f[i], f[i+1]] over x ∈ [0, x[i]] with
                // area V: f[i+1] = f[i] + V / x[i].
                f[i + 1] = (f[i] + V / x[i]).min(1.0);
                x[i + 1] = -f[i + 1].ln();
            }
            // Close the top: the recurrence lands within ~1e-10 of (0, 1).
            x[256] = 0.0;
            f[256] = 1.0;
            let mut x_scaled = [0.0f64; 256];
            let mut k = [0u64; 256];
            let two53 = (1u64 << 53) as f64;
            for i in 0..256 {
                x_scaled[i] = x[i] * U53;
                // Round down so the integer fast path never accepts a
                // point the exact comparison would reject.
                k[i] = (x[i + 1] / x[i] * two53).floor() as u64;
            }
            Tables { x, f, x_scaled, k }
        })
    }

    /// Draws one Exp(1) sample.
    #[cfg(test)]
    pub(super) fn sample<G: Rng>(rng: &mut G) -> f64 {
        sample_with(tables(), rng)
    }

    /// Draws one Exp(1) sample with the table reference hoisted out (the
    /// hot loop resolves the `OnceLock` once per batch, not per draw).
    #[inline]
    pub(super) fn sample_with<G: Rng>(t: &Tables, rng: &mut G) -> f64 {
        loop {
            let bits = rng.next_u64();
            let i = (bits & 0xFF) as usize;
            let u_bits = bits >> 11;
            if u_bits < t.k[i] {
                // Strictly inside the layer below the curve: accept. This
                // is the ~98.9% fast path — one integer compare, one
                // multiply, no transcendentals.
                return u_bits as f64 * t.x_scaled[i];
            }
            let x = u_bits as f64 * t.x_scaled[i];
            if i == 0 {
                if x < t.x[1] {
                    // Conservative integer threshold rejected a boundary
                    // point still left of R: it is under the curve.
                    return x;
                }
                // Base strip beyond R: the exponential tail is memoryless,
                // so return R + Exp(1) via the (rare) logarithm.
                let u2: f64 = rng.random::<f64>().max(U53);
                return R - u2.ln();
            }
            // Wedge between x[i+1] and x[i] (plus within-ulp boundary
            // spill from the integer fast path, which the test below
            // accepts unconditionally since e^(−x) > f[i+1] there):
            // accept under the curve.
            let u2: f64 = rng.random();
            let y = t.f[i] + u2 * (t.f[i + 1] - t.f[i]);
            if y < (-x).exp() {
                return x;
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        #[test]
        fn tables_are_monotone_and_closed() {
            let t = tables();
            for i in 0..256 {
                assert!(t.x[i] > t.x[i + 1], "x not decreasing at {i}");
                assert!(t.f[i] < t.f[i + 1], "f not increasing at {i}");
            }
            assert_eq!(t.x[256], 0.0);
            assert_eq!(t.f[256], 1.0);
            // The recurrence must close onto (0, 1) before clamping.
            assert!((t.f[255] + V / t.x[255] - 1.0).abs() < 1e-9);
        }

        #[test]
        fn exponential_moments_and_tail() {
            let mut rng = StdRng::seed_from_u64(0xE1);
            let n = 1_000_000usize;
            let (mut sum, mut sum2, mut over1, mut over_r) = (0.0, 0.0, 0usize, 0usize);
            for _ in 0..n {
                let e = sample(&mut rng);
                assert!(e >= 0.0);
                sum += e;
                sum2 += e * e;
                if e > 1.0 {
                    over1 += 1;
                }
                if e > R {
                    over_r += 1;
                }
            }
            let mean = sum / n as f64;
            let var = sum2 / n as f64 - mean * mean;
            assert!((mean - 1.0).abs() < 0.005, "mean = {mean}");
            assert!((var - 1.0).abs() < 0.02, "var = {var}");
            // P(E > 1) = e⁻¹; P(E > R) ≈ 4.5e-4: the tail branch is live.
            let p1 = over1 as f64 / n as f64;
            assert!((p1 - (-1.0f64).exp()).abs() < 0.002, "P(E>1) = {p1}");
            let pr = over_r as f64 / n as f64;
            assert!((pr - (-R).exp()).abs() < 2e-4, "P(E>R) = {pr}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Circuit, MeasRecord};
    use crate::dem::DemError;
    use crate::frame::FrameSim;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD531)
    }

    /// Three-qubit bit-flip repetition code, two rounds (mirrors the DEM
    /// extraction tests).
    fn repetition_circuit(p: f64) -> Circuit {
        let mut c = Circuit::new();
        c.r(&[0, 1, 2, 3, 4]);
        for round in 0..2 {
            c.x_error(&[0, 2, 4], p);
            c.cx(&[(0, 1), (2, 1), (2, 3), (4, 3)]);
            c.mr(&[1, 3]);
            if round == 0 {
                c.detector(&[MeasRecord::back(2)]);
                c.detector(&[MeasRecord::back(1)]);
            } else {
                c.detector(&[MeasRecord::back(2), MeasRecord::back(4)]);
                c.detector(&[MeasRecord::back(1), MeasRecord::back(3)]);
            }
        }
        c.m(&[0, 2, 4]);
        c.detector(&[
            MeasRecord::back(3),
            MeasRecord::back(2),
            MeasRecord::back(5),
        ]);
        c.detector(&[
            MeasRecord::back(2),
            MeasRecord::back(1),
            MeasRecord::back(4),
        ]);
        c.observable_include(0, &[MeasRecord::back(3)]);
        c
    }

    fn one_mechanism(detectors: Vec<u32>, observables: u64, p: f64) -> DetectorErrorModel {
        DetectorErrorModel {
            num_detectors: 6,
            num_observables: 1,
            errors: vec![DemError {
                probability: p,
                detectors,
                observables,
            }],
        }
    }

    #[test]
    fn certain_mechanism_fires_in_every_shot() {
        let sampler = DemSampler::new(&one_mechanism(vec![1, 4], 1, 1.0));
        let s = sampler.sample(100, &mut rng());
        for shot in 0..100 {
            assert_eq!(s.fired_detectors(shot), vec![1, 4]);
            assert_eq!(s.observable_mask(shot), 1);
        }
    }

    #[test]
    fn every_mechanism_injection_reproduces_its_footprint() {
        // Deterministic injection of each compiled mechanism must produce
        // exactly its detector/observable footprint, and sampling the same
        // mechanism at p = 1 must agree with injection.
        let dem = DetectorErrorModel::from_circuit(&repetition_circuit(1e-2));
        assert!(dem.len() >= 6, "expected a non-trivial model");
        let sampler = DemSampler::new(&dem);
        for i in 0..sampler.num_mechanisms() {
            let (dets, obs) = sampler.footprint(i);
            assert_eq!(dets, &dem.errors[i].detectors[..]);
            assert_eq!(obs, dem.errors[i].observables);

            let mut out = DetectorSamples::default();
            out.reset(3, dem.num_detectors, dem.num_observables);
            sampler.inject_into(i, 2, &mut out);
            for shot in 0..2 {
                assert!(out.fired_detectors(shot).is_empty(), "mechanism {i}");
            }
            assert_eq!(out.fired_detectors(2), dets, "mechanism {i}");
            assert_eq!(out.observable_mask(2), obs, "mechanism {i}");

            // Double injection cancels (footprints XOR).
            sampler.inject_into(i, 2, &mut out);
            assert!(out.fired_detectors(2).is_empty(), "mechanism {i}");
            assert_eq!(out.observable_mask(2), 0, "mechanism {i}");
        }
    }

    #[test]
    fn mechanism_marginal_statistics() {
        let sampler = DemSampler::new(&one_mechanism(vec![0], 0, 0.1));
        let shots = 100_000;
        let s = sampler.sample(shots, &mut rng());
        let rate = (0..shots).filter(|&i| s.detector(i, 0)).count() as f64 / shots as f64;
        assert!((rate - 0.1).abs() < 0.005, "rate = {rate}");
    }

    #[test]
    fn marginals_match_frame_sampler_on_repetition_code() {
        // X/Z channels map to DEM mechanisms exactly (no depolarizing
        // approximation here), so per-detector marginals must agree within
        // Monte-Carlo error.
        let c = repetition_circuit(0.04);
        let dem = DetectorErrorModel::from_circuit(&c);
        let sampler = DemSampler::new(&dem);
        let shots = 200_000;
        let frame = FrameSim::sample(&c, shots, &mut rng());
        let dems = sampler.sample(shots, &mut StdRng::seed_from_u64(0x5EED));
        for d in 0..dem.num_detectors {
            let rf = (0..shots).filter(|&s| frame.detector(s, d)).count() as f64 / shots as f64;
            let rd = (0..shots).filter(|&s| dems.detector(s, d)).count() as f64 / shots as f64;
            assert!(
                (rf - rd).abs() < 0.005,
                "detector {d}: frame {rf} vs dem {rd}"
            );
        }
        let of = (0..shots)
            .filter(|&s| frame.observable_mask(s) != 0)
            .count() as f64
            / shots as f64;
        let od = (0..shots).filter(|&s| dems.observable_mask(s) != 0).count() as f64 / shots as f64;
        assert!(
            (of - od).abs() < 0.005,
            "observable: frame {of} vs dem {od}"
        );
    }

    #[test]
    fn syndrome_output_matches_detector_samples_output() {
        // Same RNG state → identical hit sequence, so the shot-major
        // writer (compiled word footprints, no transpose) must agree bit
        // for bit with the detector-major reference writer.
        let c = repetition_circuit(0.05);
        let dem = DetectorErrorModel::from_circuit(&c);
        let sampler = DemSampler::new(&dem);
        let shots = 1000;
        let dense = sampler.sample(shots, &mut rng());
        let mut syndromes = crate::frame::SyndromeBatch::default();
        let mut masks = Vec::new();
        sampler.sample_syndromes_into(shots, &mut rng(), &mut syndromes, &mut masks);
        assert_eq!(syndromes.num_shots(), shots);
        assert_eq!(syndromes.num_detectors(), dem.num_detectors);
        assert_eq!(masks.len(), shots);
        let mut fired = Vec::new();
        for (s, &mask) in masks.iter().enumerate() {
            syndromes.fired_into(s, &mut fired);
            assert_eq!(fired, dense.fired_detectors(s), "shot {s}");
            assert_eq!(mask, dense.observable_mask(s), "shot {s}");
        }
    }

    #[test]
    fn sample_into_reuses_buffers_and_resets_state() {
        let sampler = DemSampler::new(&one_mechanism(vec![2], 1, 1.0));
        let mut out = DetectorSamples::default();
        let mut r = rng();
        sampler.sample_into(128, &mut r, &mut out);
        assert_eq!(out.num_shots(), 128);
        // A second, smaller batch must not inherit stale bits or size.
        sampler.sample_into(64, &mut r, &mut out);
        assert_eq!(out.num_shots(), 64);
        for shot in 0..64 {
            assert_eq!(out.fired_detectors(shot), vec![2]);
            assert_eq!(out.observable_mask(shot), 1);
        }
    }

    #[test]
    #[should_panic(expected = "detector id 6 out of range")]
    fn out_of_range_detector_rejected_at_construction() {
        DemSampler::new(&one_mechanism(vec![6], 0, 0.1));
    }

    #[test]
    #[should_panic(expected = "observable mask")]
    fn out_of_range_observable_rejected_at_construction() {
        // Mask bit 1 with num_observables = 1: out of range.
        DemSampler::new(&one_mechanism(vec![0], 0b10, 0.1));
    }

    #[test]
    #[should_panic(expected = "at most 64 observables")]
    fn too_many_observables_rejected_at_construction() {
        let dem = DetectorErrorModel {
            num_detectors: 1,
            num_observables: 65,
            errors: Vec::new(),
        };
        DemSampler::new(&dem);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_rejected_at_construction() {
        DemSampler::new(&one_mechanism(vec![0], 0, 1.5));
    }

    #[test]
    fn empty_model_samples_silence() {
        let dem = DetectorErrorModel {
            num_detectors: 4,
            num_observables: 2,
            errors: Vec::new(),
        };
        let sampler = DemSampler::new(&dem);
        let s = sampler.sample(70, &mut rng());
        assert_eq!(s.num_detectors(), 4);
        assert_eq!(s.num_observables(), 2);
        for shot in 0..70 {
            assert!(s.fired_detectors(shot).is_empty());
            assert_eq!(s.observable_mask(shot), 0);
        }
    }
}
