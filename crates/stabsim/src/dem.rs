//! Detector error model (DEM) extraction.
//!
//! A DEM lists the circuit's elementary error mechanisms, each with its
//! probability, the set of detectors it flips and the logical observables it
//! flips. It is the decoder's view of the circuit: correlated decoding of
//! transversal-gate circuits (§II.4 of the paper) falls out of extracting one
//! joint DEM for the whole multi-patch circuit.
//!
//! Extraction walks the circuit *backwards*, maintaining for every qubit the
//! set of detectors/observables sensitive to an X (or Z) flip at that point in
//! time. Each noise channel then reads off its flipped-detector sets directly,
//! so the total cost is linear in circuit size times the (small) sensitivity
//! set size, independent of how far errors propagate.

use crate::circuit::{Circuit, OpKind};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// One elementary error mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct DemError {
    /// Probability that this mechanism fires, independently of all others.
    pub probability: f64,
    /// Sorted detector indices flipped.
    pub detectors: Vec<u32>,
    /// Bit mask of observables flipped (observable `i` ↔ bit `i`).
    pub observables: u64,
}

impl DemError {
    /// Whether this error is graphlike (flips at most two detectors).
    pub fn is_graphlike(&self) -> bool {
        self.detectors.len() <= 2
    }
}

/// A detector error model: independent error mechanisms over detectors.
#[derive(Debug, Clone, Default)]
pub struct DetectorErrorModel {
    /// Number of detectors in the underlying circuit.
    pub num_detectors: usize,
    /// Number of observables in the underlying circuit.
    pub num_observables: usize,
    /// The error mechanisms.
    pub errors: Vec<DemError>,
}

impl DetectorErrorModel {
    /// Extracts the DEM of `circuit`.
    ///
    /// Mechanisms with identical (detectors, observables) signatures are
    /// merged with XOR-combined probabilities `p = p₁(1−p₂) + p₂(1−p₁)`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more than 64 observables.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        assert!(
            circuit.num_observables() <= 64,
            "at most 64 observables supported, got {}",
            circuit.num_observables()
        );
        let extractor = Extractor::new(circuit);
        extractor.run()
    }

    /// Rewrites the model so every error is graphlike (≤ 2 detectors), by
    /// greedily decomposing hyperedges into existing graphlike components.
    ///
    /// This mirrors Stim's `decompose_errors`: a mechanism flipping detectors
    /// {a, b, c, d} is replaced by components such as {a, b} and {c, d} when
    /// those appear as mechanisms of their own; any remainder is paired up
    /// arbitrarily. Observable masks are carried by matching components where
    /// possible, with any residual assigned to the final component.
    ///
    /// Returns the graphlike model and the number of hyperedges that required
    /// arbitrary (non-matching) pairing.
    pub fn decompose_graphlike(&self) -> (DetectorErrorModel, usize) {
        // Index existing graphlike signatures.
        let mut known: HashMap<Vec<u32>, u64> = HashMap::new();
        for e in self.errors.iter().filter(|e| e.is_graphlike()) {
            known.entry(e.detectors.clone()).or_insert(e.observables);
        }
        // Keyed `(detectors, observables)` in a BTreeMap so the emitted
        // mechanism order below is the key order — never the hasher's.
        let mut merged: BTreeMap<(Vec<u32>, u64), f64> = BTreeMap::new();
        let mut arbitrary = 0usize;
        for e in &self.errors {
            if e.is_graphlike() {
                merge_into(
                    &mut merged,
                    e.detectors.clone(),
                    e.observables,
                    e.probability,
                );
                continue;
            }
            let (components, clean) = decompose(&e.detectors, e.observables, &known);
            if !clean {
                arbitrary += 1;
            }
            for (dets, obs) in components {
                merge_into(&mut merged, dets, obs, e.probability);
            }
        }
        // BTreeMap iteration is already (detectors, observables)-ordered —
        // exactly the canonical mechanism order.
        let errors: Vec<DemError> = merged
            .into_iter()
            .map(|((detectors, observables), probability)| DemError {
                probability,
                detectors,
                observables,
            })
            .collect();
        (
            DetectorErrorModel {
                num_detectors: self.num_detectors,
                num_observables: self.num_observables,
                errors,
            },
            arbitrary,
        )
    }

    /// Total number of error mechanisms.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// Whether the model has no mechanisms.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Iterates over the mechanisms.
    pub fn iter(&self) -> std::slice::Iter<'_, DemError> {
        self.errors.iter()
    }
}

impl fmt::Display for DetectorErrorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# dem: {} detectors, {} observables, {} errors",
            self.num_detectors,
            self.num_observables,
            self.errors.len()
        )?;
        for e in &self.errors {
            write!(f, "error({:.6})", e.probability)?;
            for d in &e.detectors {
                write!(f, " D{d}")?;
            }
            for o in 0..64 {
                if e.observables >> o & 1 == 1 {
                    write!(f, " L{o}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn merge_into(map: &mut BTreeMap<(Vec<u32>, u64), f64>, dets: Vec<u32>, obs: u64, p: f64) {
    if dets.is_empty() && obs == 0 {
        return; // invisible and harmless
    }
    let slot = map.entry((dets, obs)).or_insert(0.0);
    *slot = *slot * (1.0 - p) + p * (1.0 - *slot);
}

/// Greedy hyperedge decomposition into known graphlike pieces.
fn decompose(
    dets: &[u32],
    obs: u64,
    known: &HashMap<Vec<u32>, u64>,
) -> (Vec<(Vec<u32>, u64)>, bool) {
    let mut remaining: Vec<u32> = dets.to_vec();
    let mut components: Vec<(Vec<u32>, u64)> = Vec::new();
    let mut residual_obs = obs;
    let mut clean = true;
    // Pass 1: known pairs within the remaining set.
    'outer: loop {
        for i in 0..remaining.len() {
            for j in (i + 1)..remaining.len() {
                let key = vec![remaining[i], remaining[j]];
                if let Some(&o) = known.get(&key) {
                    residual_obs ^= o;
                    components.push((key, o));
                    remaining.remove(j);
                    remaining.remove(i);
                    continue 'outer;
                }
            }
        }
        break;
    }
    // Pass 2: known singletons (boundary edges).
    remaining.retain(|&d| {
        if let Some(&o) = known.get(&vec![d]) {
            residual_obs ^= o;
            components.push((vec![d], o));
            false
        } else {
            true
        }
    });
    // Pass 3: anything left gets paired arbitrarily (and flagged).
    if !remaining.is_empty() {
        clean = false;
        let mut it = remaining.chunks(2);
        for chunk in &mut it {
            components.push((chunk.to_vec(), 0));
        }
    }
    // Residual observable flips ride on the last component.
    if residual_obs != 0 {
        if let Some(last) = components.last_mut() {
            last.1 ^= residual_obs;
        } else {
            components.push((Vec::new(), residual_obs));
        }
    }
    (components, clean)
}

/// Sorted-set XOR used for sensitivity sets (sets stay small, so Vec beats HashSet).
fn xor_into(set: &mut Vec<u32>, other: &[u32]) {
    if other.is_empty() {
        return;
    }
    let mut out = Vec::with_capacity(set.len() + other.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < set.len() && j < other.len() {
        match set[i].cmp(&other[j]) {
            std::cmp::Ordering::Less => {
                out.push(set[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(other[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&set[i..]);
    out.extend_from_slice(&other[j..]);
    *set = out;
}

struct Extractor<'c> {
    circuit: &'c Circuit,
    /// Combined id space: detector d ↦ d; observable o ↦ num_detectors + o.
    meas_sensitivity: Vec<Vec<u32>>,
    num_detectors: u32,
}

impl<'c> Extractor<'c> {
    fn new(circuit: &'c Circuit) -> Self {
        let num_detectors = circuit.num_detectors() as u32;
        let mut meas_sensitivity = vec![Vec::new(); circuit.num_measurements()];
        for (d, meas_list) in circuit.detectors().iter().enumerate() {
            for &m in meas_list {
                xor_into(&mut meas_sensitivity[m], &[d as u32]);
            }
        }
        for (o, meas_list) in circuit.observables().iter().enumerate() {
            for &m in meas_list {
                xor_into(&mut meas_sensitivity[m], &[num_detectors + o as u32]);
            }
        }
        Self {
            circuit,
            meas_sensitivity,
            num_detectors,
        }
    }

    fn run(self) -> DetectorErrorModel {
        let n = self.circuit.num_qubits() as usize;
        // dx[q]: ids flipped by an X error on q at the current (backward) time.
        let mut dx: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut dz: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut meas_idx = self.circuit.num_measurements();
        // Key-ordered for the same reason as in `decompose_graphlike`.
        let mut merged: BTreeMap<(Vec<u32>, u64), f64> = BTreeMap::new();

        for op in self.circuit.ops().iter().rev() {
            use OpKind::*;
            match op.kind {
                Tick | X | Y | Z => {}
                H => {
                    for &q in &op.targets {
                        let q = q as usize;
                        std::mem::swap(&mut dx[q], &mut dz[q]);
                    }
                }
                S | SDag => {
                    // Backward: X before S ≡ Y after S, so DX ^= DZ.
                    for &q in &op.targets {
                        let q = q as usize;
                        let zsens = dz[q].clone();
                        xor_into(&mut dx[q], &zsens);
                    }
                }
                SqrtX | SqrtXDag => {
                    for &q in &op.targets {
                        let q = q as usize;
                        let xsens = dx[q].clone();
                        xor_into(&mut dz[q], &xsens);
                    }
                }
                CX => {
                    for pair in op.targets.chunks_exact(2) {
                        let (c, t) = (pair[0] as usize, pair[1] as usize);
                        // X_c (before) ≡ X_c X_t (after); Z_t ≡ Z_c Z_t.
                        let xt = dx[t].clone();
                        xor_into(&mut dx[c], &xt);
                        let zc = dz[c].clone();
                        xor_into(&mut dz[t], &zc);
                    }
                }
                CZ => {
                    for pair in op.targets.chunks_exact(2) {
                        let (a, b) = (pair[0] as usize, pair[1] as usize);
                        // X_a ≡ X_a Z_b; X_b ≡ X_b Z_a.
                        let zb = dz[b].clone();
                        xor_into(&mut dx[a], &zb);
                        let za = dz[a].clone();
                        xor_into(&mut dx[b], &za);
                    }
                }
                Swap => {
                    for pair in op.targets.chunks_exact(2) {
                        let (a, b) = (pair[0] as usize, pair[1] as usize);
                        dx.swap(a, b);
                        dz.swap(a, b);
                    }
                }
                M => {
                    for &q in op.targets.iter().rev() {
                        meas_idx -= 1;
                        let q = q as usize;
                        let sens = self.meas_sensitivity[meas_idx].clone();
                        xor_into(&mut dx[q], &sens);
                    }
                }
                MX => {
                    for &q in op.targets.iter().rev() {
                        meas_idx -= 1;
                        let q = q as usize;
                        let sens = self.meas_sensitivity[meas_idx].clone();
                        xor_into(&mut dz[q], &sens);
                    }
                }
                MR => {
                    for &q in op.targets.iter().rev() {
                        meas_idx -= 1;
                        let q = q as usize;
                        // Errors before MR affect only this measurement: the
                        // reset cuts them off from everything later.
                        dx[q] = self.meas_sensitivity[meas_idx].clone();
                        dz[q].clear();
                    }
                }
                R | RX => {
                    for &q in &op.targets {
                        let q = q as usize;
                        dx[q].clear();
                        dz[q].clear();
                    }
                }
                XError | ZError | YError => {
                    let p = op.arg;
                    for &q in &op.targets {
                        let q = q as usize;
                        let mut sens = Vec::new();
                        if op.kind != ZError {
                            xor_into(&mut sens, &dx[q]);
                        }
                        if op.kind != XError {
                            xor_into(&mut sens, &dz[q]);
                        }
                        self.emit(&mut merged, sens, p);
                    }
                }
                Depolarize1 => {
                    let p3 = op.arg / 3.0;
                    for &q in &op.targets {
                        let q = q as usize;
                        for code in 1u8..4 {
                            let sens = self.single_sens(&dx, &dz, q, code);
                            self.emit(&mut merged, sens, p3);
                        }
                    }
                }
                Depolarize2 => {
                    let p15 = op.arg / 15.0;
                    for pair in op.targets.chunks_exact(2) {
                        let (a, b) = (pair[0] as usize, pair[1] as usize);
                        for code in 1u8..16 {
                            let mut sens = self.single_sens(&dx, &dz, a, code & 3);
                            let other = self.single_sens(&dx, &dz, b, code >> 2);
                            xor_into(&mut sens, &other);
                            self.emit(&mut merged, sens, p15);
                        }
                    }
                }
            }
        }
        debug_assert_eq!(meas_idx, 0, "measurement bookkeeping out of sync");

        let errors: Vec<DemError> = merged
            .into_iter()
            .map(|((detectors, observables), probability)| DemError {
                probability,
                detectors,
                observables,
            })
            .collect();
        DetectorErrorModel {
            num_detectors: self.num_detectors as usize,
            num_observables: self.circuit.num_observables(),
            errors,
        }
    }

    /// Sensitivity of Pauli `code` (bit0 = x component, bit1 = z component) on `q`.
    fn single_sens(&self, dx: &[Vec<u32>], dz: &[Vec<u32>], q: usize, code: u8) -> Vec<u32> {
        let mut sens = Vec::new();
        if code & 1 != 0 {
            xor_into(&mut sens, &dx[q]);
        }
        if code & 2 != 0 {
            xor_into(&mut sens, &dz[q]);
        }
        sens
    }

    fn emit(&self, merged: &mut BTreeMap<(Vec<u32>, u64), f64>, sens: Vec<u32>, p: f64) {
        // Split combined ids back into detectors and observables.
        let mut dets = Vec::with_capacity(sens.len());
        let mut obs = 0u64;
        for id in sens {
            if id < self.num_detectors {
                dets.push(id);
            } else {
                obs |= 1u64 << (id - self.num_detectors);
            }
        }
        merge_into(merged, dets, obs, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{Circuit, MeasRecord};

    /// Three-qubit bit-flip repetition code, two rounds.
    fn repetition_circuit(p: f64) -> Circuit {
        let mut c = Circuit::new();
        // data: 0, 2, 4; ancilla: 1, 3
        c.r(&[0, 1, 2, 3, 4]);
        for round in 0..2 {
            c.x_error(&[0, 2, 4], p);
            c.cx(&[(0, 1), (2, 1), (2, 3), (4, 3)]);
            c.mr(&[1, 3]);
            if round == 0 {
                c.detector(&[MeasRecord::back(2)]);
                c.detector(&[MeasRecord::back(1)]);
            } else {
                c.detector(&[MeasRecord::back(2), MeasRecord::back(4)]);
                c.detector(&[MeasRecord::back(1), MeasRecord::back(3)]);
            }
        }
        c.m(&[0, 2, 4]);
        c.detector(&[
            MeasRecord::back(3),
            MeasRecord::back(2),
            MeasRecord::back(5),
        ]);
        c.detector(&[
            MeasRecord::back(2),
            MeasRecord::back(1),
            MeasRecord::back(4),
        ]);
        c.observable_include(0, &[MeasRecord::back(3)]);
        c
    }

    #[test]
    fn repetition_code_dem_structure() {
        let dem = DetectorErrorModel::from_circuit(&repetition_circuit(1e-3));
        assert_eq!(dem.num_detectors, 6);
        assert_eq!(dem.num_observables, 1);
        assert!(!dem.is_empty());
        // Every mechanism flips at most 2 detectors (repetition code is graphlike).
        for e in dem.iter() {
            assert!(e.detectors.len() <= 2, "non-graphlike: {e:?}");
        }
        // A round-0 X error on data qubit 0 flips ancilla 1 in both rounds
        // (cancelling in the comparison detector D2) and the final data
        // measurement, leaving exactly {D0} plus the observable. The round-1
        // error leaves {D2} plus the observable. Interior data qubit 2 gives
        // the two-ancilla edge {D0, D1}.
        for expect in [
            (vec![0u32], 1u64),
            (vec![2], 1),
            (vec![0, 1], 0),
            (vec![2, 3], 0),
            (vec![1], 0),
            (vec![3], 0),
        ] {
            assert!(
                dem.iter()
                    .any(|e| e.detectors == expect.0 && e.observables == expect.1),
                "missing edge {expect:?}; dem =\n{dem}"
            );
        }
    }

    #[test]
    fn probabilities_merge_xor_style() {
        // Two independent p=0.5 X errors on the same qubit before the same
        // measurement: combined flip probability is 0.5.
        let mut c = Circuit::new();
        c.r(&[0]);
        c.x_error(&[0], 0.5);
        c.x_error(&[0], 0.5);
        c.m(&[0]);
        c.detector(&[MeasRecord::back(1)]);
        let dem = DetectorErrorModel::from_circuit(&c);
        assert_eq!(dem.len(), 1);
        assert!((dem.errors[0].probability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn z_error_before_z_measurement_is_invisible() {
        let mut c = Circuit::new();
        c.r(&[0]);
        c.z_error(&[0], 0.1);
        c.m(&[0]);
        c.detector(&[MeasRecord::back(1)]);
        let dem = DetectorErrorModel::from_circuit(&c);
        assert!(dem.is_empty(), "dem = {dem}");
    }

    #[test]
    fn error_through_cx_propagates() {
        // X on q0, then CX(0,1), measuring both: flips both measurements.
        let mut c = Circuit::new();
        c.r(&[0, 1]);
        c.x_error(&[0], 0.01);
        c.cx(&[(0, 1)]);
        c.m(&[0, 1]);
        c.detector(&[MeasRecord::back(2)]);
        c.detector(&[MeasRecord::back(1)]);
        let dem = DetectorErrorModel::from_circuit(&c);
        assert_eq!(dem.len(), 1);
        assert_eq!(dem.errors[0].detectors, vec![0, 1]);
    }

    #[test]
    fn hadamard_turns_z_sensitivity_into_x() {
        let mut c = Circuit::new();
        c.r(&[0]);
        c.z_error(&[0], 0.01);
        c.h(&[0]);
        c.m(&[0]);
        c.detector(&[MeasRecord::back(1)]);
        let dem = DetectorErrorModel::from_circuit(&c);
        assert_eq!(dem.len(), 1);
        assert_eq!(dem.errors[0].detectors, vec![0]);
    }

    #[test]
    fn observable_only_error_is_kept() {
        // An undetected error that flips the observable must not be dropped.
        let mut c = Circuit::new();
        c.r(&[0]);
        c.x_error(&[0], 0.02);
        c.m(&[0]);
        c.observable_include(0, &[MeasRecord::back(1)]);
        let dem = DetectorErrorModel::from_circuit(&c);
        assert_eq!(dem.len(), 1);
        assert!(dem.errors[0].detectors.is_empty());
        assert_eq!(dem.errors[0].observables, 1);
    }

    #[test]
    fn depolarize1_distinct_components() {
        // On |0> measured in Z: X and Y each flip; Z is invisible. The X and Y
        // components share the same detector signature so they merge.
        let mut c = Circuit::new();
        c.r(&[0]);
        c.depolarize1(&[0], 0.3);
        c.m(&[0]);
        c.detector(&[MeasRecord::back(1)]);
        let dem = DetectorErrorModel::from_circuit(&c);
        assert_eq!(dem.len(), 1);
        let p = 0.1;
        let expect = p * (1.0 - p) + p * (1.0 - p * (1.0 - p)) - p * p * (1.0 - p);
        // combined via xor-merge of two p/3 components:
        let combined = p + p * (1.0 - 2.0 * p);
        assert!(
            (dem.errors[0].probability - combined).abs() < 1e-9
                || (dem.errors[0].probability - expect).abs() < 1e-9,
            "p = {}",
            dem.errors[0].probability
        );
    }

    #[test]
    fn mr_cuts_propagation() {
        // An error before MR flips that measurement only, not later ones.
        let mut c = Circuit::new();
        c.r(&[0]);
        c.x_error(&[0], 0.01);
        c.mr(&[0]);
        c.m(&[0]);
        c.detector(&[MeasRecord::back(2)]);
        c.detector(&[MeasRecord::back(1)]);
        let dem = DetectorErrorModel::from_circuit(&c);
        assert_eq!(dem.len(), 1);
        assert_eq!(dem.errors[0].detectors, vec![0]);
    }

    #[test]
    fn decomposition_splits_hyperedge() {
        // Build a DEM with edges {0},{1},{0,1,2,3} where {2,3} is known.
        let dem = DetectorErrorModel {
            num_detectors: 4,
            num_observables: 1,
            errors: vec![
                DemError {
                    probability: 0.01,
                    detectors: vec![0],
                    observables: 1,
                },
                DemError {
                    probability: 0.01,
                    detectors: vec![2, 3],
                    observables: 0,
                },
                DemError {
                    probability: 0.001,
                    detectors: vec![0, 1, 2, 3],
                    observables: 1,
                },
            ],
        };
        let (graphlike, arbitrary) = dem.decompose_graphlike();
        assert!(graphlike.errors.iter().all(|e| e.is_graphlike()));
        // {0,1,2,3} should decompose into {2,3} (known) and {0,1} (arbitrary pair
        // since {0,1} is not known but both remain) — flagged arbitrary... but
        // actually {0} is known as a singleton, so the greedy finds {2,3} then {0},
        // leaving {1} paired alone.
        assert_eq!(arbitrary, 1);
        let total: f64 = graphlike.errors.iter().map(|e| e.probability).sum();
        assert!(total > 0.0);
    }

    #[test]
    fn dem_matches_frame_sim_statistics() {
        // The DEM's single-detector marginal should match sampled frequency.
        use crate::frame::FrameSim;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let c = repetition_circuit(0.05);
        let dem = DetectorErrorModel::from_circuit(&c);
        // P(detector 0 fires) ≈ sum of p over mechanisms containing 0 (small p).
        let mut predicted = 0.0;
        for e in dem.iter() {
            if e.detectors.contains(&0) {
                predicted = predicted * (1.0 - e.probability) + e.probability * (1.0 - predicted);
            }
        }
        let shots = 200_000;
        let mut rng = StdRng::seed_from_u64(11);
        let s = FrameSim::sample(&c, shots, &mut rng);
        let rate = (0..shots).filter(|&i| s.detector(i, 0)).count() as f64 / shots as f64;
        assert!(
            (rate - predicted).abs() < 0.01,
            "sampled {rate} vs predicted {predicted}"
        );
    }
}
