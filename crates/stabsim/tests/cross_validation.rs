//! Cross-validation of the exact tableau simulator against the bit-packed
//! Pauli-frame sampler on random ≤8-qubit Clifford circuits.
//!
//! The frame sampler's contract is that XOR-ing its measurement flips onto
//! the noiseless reference record yields a valid sample of the circuit.
//! With *deterministic* noise (Pauli channels at p ∈ {0, 1} — no sampling
//! randomness), the flips are unique, so the contract is exactly testable:
//! replaying the circuit through the tableau simulator while steering every
//! random measurement outcome to `reference ⊕ flip` must find every
//! **deterministic** measurement equal to `reference ⊕ flip` as well. At
//! zero noise this degenerates to "the frame sampler reports no flips and
//! the tableau reproduces the reference", and every detector/observable bit
//! agrees between the two engines.

use proptest::prelude::*;
use raa_stabsim::circuit::OpKind;
use raa_stabsim::{Circuit, FrameSim, MeasRecord, MeasureResult, TableauSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a random Clifford circuit from encoded ops; `noisy` turns the
/// Pauli-injection slots into p = 1 channels (p = 0 otherwise).
fn build(n: usize, ops: &[(u8, u8, u8)], noisy: bool) -> Circuit {
    let mut c = Circuit::new();
    let all: Vec<u32> = (0..n as u32).collect();
    c.r(&all);
    let p = if noisy { 1.0 } else { 0.0 };
    for &(code, qa, qb) in ops {
        let a = (qa as usize % n) as u32;
        // A second target distinct from `a`.
        let b = ((a as usize + 1 + qb as usize % (n - 1)) % n) as u32;
        match code % 18 {
            0 => c.h(&[a]),
            1 => c.s(&[a]),
            2 => c.s_dag(&[a]),
            3 => c.sqrt_x(&[a]),
            4 => c.sqrt_x_dag(&[a]),
            5 => c.cx(&[(a, b)]),
            6 => c.cz(&[(a, b)]),
            7 => c.swap(&[(a, b)]),
            8 => c.x(&[a]),
            9 => c.z(&[a]),
            // Mid-circuit resets are generated behind a recorded measurement:
            // a bare reset of an *entangled* qubit discards an unobservable
            // collapse whose branch pairing the frame sampler picks freely
            // (valid in distribution, but not bit-comparable), so the exact
            // replay is only defined when the reset target is unentangled.
            10 => c.m(&[a]).r(&[a]),
            11 => c.mx(&[a]).rx(&[a]),
            12 => c.x_error(&[a], p),
            13 => c.z_error(&[a], p),
            14 => c.y_error(&[a], p),
            15 => c.m(&[a]),
            16 => c.mx(&[a]),
            _ => c.mr(&[a]),
        };
    }
    c.m(&all);
    // Detectors: every measurement individually, plus some adjacent pairs;
    // one observable over every third measurement.
    let nm = c.num_measurements();
    for k in 1..=nm {
        c.detector(&[MeasRecord::back(k)]);
    }
    for k in 2..=nm {
        if k % 3 == 0 {
            c.detector(&[MeasRecord::back(k), MeasRecord::back(k - 1)]);
        }
    }
    let obs: Vec<MeasRecord> = (1..=nm)
        .filter(|k| k % 3 == 1)
        .map(MeasRecord::back)
        .collect();
    c.observable_include(0, &obs);
    c
}

/// Replays `circuit` through the exact tableau simulator, steering every
/// random measurement outcome to `desired` and applying p = 1 Pauli
/// channels as gates (p = 0 channels are no-ops; other probabilities are
/// rejected — this is a deterministic replay).
fn tableau_replay(circuit: &Circuit, desired: &[bool]) -> Vec<MeasureResult> {
    let mut sim = TableauSim::new(circuit.num_qubits() as usize);
    let mut out: Vec<MeasureResult> = Vec::new();
    for op in circuit.ops() {
        match op.kind {
            OpKind::X => op.targets.iter().for_each(|&q| sim.x_gate(q as usize)),
            OpKind::Y => op.targets.iter().for_each(|&q| sim.y_gate(q as usize)),
            OpKind::Z => op.targets.iter().for_each(|&q| sim.z_gate(q as usize)),
            OpKind::H => op.targets.iter().for_each(|&q| sim.h(q as usize)),
            OpKind::S => op.targets.iter().for_each(|&q| sim.s(q as usize)),
            OpKind::SDag => op.targets.iter().for_each(|&q| sim.s_dag(q as usize)),
            OpKind::SqrtX => op.targets.iter().for_each(|&q| sim.sqrt_x(q as usize)),
            OpKind::SqrtXDag => op.targets.iter().for_each(|&q| sim.sqrt_x_dag(q as usize)),
            OpKind::CX => op.pairs().for_each(|(a, b)| sim.cx(a as usize, b as usize)),
            OpKind::CZ => op.pairs().for_each(|(a, b)| sim.cz(a as usize, b as usize)),
            OpKind::Swap => op
                .pairs()
                .for_each(|(a, b)| sim.swap(a as usize, b as usize)),
            OpKind::R => op.targets.iter().for_each(|&q| sim.reset(q as usize)),
            OpKind::RX => op.targets.iter().for_each(|&q| sim.reset_x(q as usize)),
            OpKind::XError | OpKind::ZError | OpKind::YError => {
                assert!(
                    op.arg == 0.0 || op.arg == 1.0,
                    "deterministic replay needs p in {{0, 1}}"
                );
                if op.arg == 1.0 {
                    for &q in &op.targets {
                        match op.kind {
                            OpKind::XError => sim.x_gate(q as usize),
                            OpKind::ZError => sim.z_gate(q as usize),
                            _ => sim.y_gate(q as usize),
                        }
                    }
                }
            }
            OpKind::M => {
                for &q in &op.targets {
                    let m = sim.measure_desired(q as usize, desired[out.len()]);
                    out.push(m);
                }
            }
            OpKind::MX => {
                for &q in &op.targets {
                    sim.h(q as usize);
                    let m = sim.measure_desired(q as usize, desired[out.len()]);
                    sim.h(q as usize);
                    out.push(m);
                }
            }
            OpKind::MR => {
                for &q in &op.targets {
                    let m = sim.measure_desired(q as usize, desired[out.len()]);
                    if m.value {
                        sim.x_gate(q as usize);
                    }
                    out.push(m);
                }
            }
            OpKind::Tick | OpKind::Depolarize1 | OpKind::Depolarize2 => {
                unreachable!("not generated by this test")
            }
        }
    }
    out
}

fn check_agreement(c: &Circuit, noisy: bool) {
    let reference = TableauSim::reference_sample(c);
    // One shot is enough: with p ∈ {0, 1} channels the flips are unique.
    let flip_rows = FrameSim::sample_measurement_flips(c, 1, &mut StdRng::seed_from_u64(1));
    let flips: Vec<bool> = (0..flip_rows.num_measurements())
        .map(|m| flip_rows.flipped(0, m))
        .collect();
    assert_eq!(flips.len(), reference.len());
    if !noisy {
        assert!(flips.iter().all(|&f| !f), "zero noise must mean no flips");
    }
    let desired: Vec<bool> = reference.iter().zip(&flips).map(|(&r, &f)| r ^ f).collect();

    // Measurement-level agreement: wherever the tableau has no freedom, its
    // value must match the frame sampler's prediction.
    let replayed = tableau_replay(c, &desired);
    assert_eq!(replayed.len(), desired.len());
    for (m, (result, &want)) in replayed.iter().zip(&desired).enumerate() {
        assert_eq!(
            result.value,
            want,
            "measurement {} ({}): tableau {} vs frame prediction {}",
            m,
            if result.deterministic {
                "deterministic"
            } else {
                "random"
            },
            result.value,
            want
        );
    }

    // Detector/observable agreement through the independent sampling path.
    let samples = FrameSim::sample(c, 1, &mut StdRng::seed_from_u64(2));
    for d in 0..c.num_detectors() {
        let tableau_bit = c
            .detector_measurements(d)
            .iter()
            .fold(false, |acc, &m| acc ^ replayed[m].value);
        let reference_bit = c
            .detector_measurements(d)
            .iter()
            .fold(false, |acc, &m| acc ^ reference[m]);
        assert_eq!(
            tableau_bit,
            samples.detector(0, d) ^ reference_bit,
            "detector {}",
            d
        );
    }
    for o in 0..c.num_observables() {
        let tableau_bit = c
            .observable(o)
            .iter()
            .fold(false, |acc, &m| acc ^ replayed[m].value);
        let reference_bit = c
            .observable(o)
            .iter()
            .fold(false, |acc, &m| acc ^ reference[m]);
        assert_eq!(tableau_bit, samples.observable(0, o) ^ reference_bit);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zero noise: the frame sampler reports no flips and the tableau
    /// reproduces the reference on every measurement, detector and
    /// observable bit.
    #[test]
    fn zero_noise_engines_agree(
        n in 2usize..=8,
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..40),
    ) {
        let c = build(n, &ops, false);
        check_agreement(&c, false);
    }

    /// Deterministic Pauli injections (p = 1 channels): the frame sampler's
    /// predicted flips match the exact simulator on every bit it determines.
    #[test]
    fn deterministic_noise_engines_agree(
        n in 2usize..=8,
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..40),
    ) {
        let c = build(n, &ops, true);
        check_agreement(&c, true);
    }
}

/// Opt-in deep fuzz (`cargo test --test cross_validation -- --ignored`):
/// 200k random circuits with greedy op-removal shrinking on failure, far
/// beyond the proptest case budget. Prints the minimized op list of the
/// first counterexample.
#[test]
#[ignore]
fn deep_fuzz_with_shrinking() {
    use rand::Rng;
    let fails = |n: usize, ops: &[(u8, u8, u8)]| {
        let c = build(n, ops, true);
        std::panic::catch_unwind(|| check_agreement(&c, true)).is_err()
    };
    let mut rng = StdRng::seed_from_u64(123);
    for trial in 0..200_000 {
        let n = 2 + (rng.random::<u8>() as usize) % 7;
        let len = 1 + (rng.random::<u8>() as usize) % 8;
        let ops: Vec<(u8, u8, u8)> = (0..len)
            .map(|_| (rng.random::<u8>(), rng.random::<u8>(), rng.random::<u8>()))
            .collect();
        if !fails(n, &ops) {
            continue;
        }
        let mut cur = ops;
        while let Some(i) = (0..cur.len()).find(|&i| {
            cur.len() > 1 && {
                let mut t = cur.clone();
                t.remove(i);
                fails(n, &t)
            }
        }) {
            cur.remove(i);
        }
        let decoded: Vec<(u8, u8, u8)> = cur.iter().map(|&(c, a, b)| (c % 18, a, b)).collect();
        panic!("trial {trial}: engines disagree at n = {n}, minimized ops {decoded:?}");
    }
}
