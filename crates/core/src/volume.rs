//! Space–time accounting: qubits × seconds, the paper's optimization objective.

use std::fmt;
use std::ops::Add;

/// A space–time cost: physical qubits held for a duration.
///
/// The paper optimizes the product (its §II.2): "the space-time volume of the
/// computation, defined as the product of the qubit number and run time".
///
/// # Example
///
/// ```
/// use raa_core::volume::SpaceTime;
///
/// let st = SpaceTime::new(19e6, 5.6 * 86_400.0); // the paper's headline
/// assert!((st.volume_qubit_days() - 19e6 * 5.6).abs() < 1e3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpaceTime {
    /// Physical qubits occupied.
    pub qubits: f64,
    /// Wall-clock duration in seconds.
    pub seconds: f64,
}

impl SpaceTime {
    /// Creates a cost of `qubits` held for `seconds`.
    ///
    /// # Panics
    ///
    /// Panics if either value is negative or non-finite.
    pub fn new(qubits: f64, seconds: f64) -> Self {
        assert!(
            qubits.is_finite() && qubits >= 0.0,
            "qubit count must be non-negative, got {qubits}"
        );
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "duration must be non-negative, got {seconds}"
        );
        Self { qubits, seconds }
    }

    /// Volume in qubit·seconds.
    pub fn volume(&self) -> f64 {
        self.qubits * self.seconds
    }

    /// Volume in qubit·days.
    pub fn volume_qubit_days(&self) -> f64 {
        self.volume() / 86_400.0
    }

    /// Volume in megaqubit·days (the units of the paper's Fig. 2 comparisons).
    pub fn volume_mqubit_days(&self) -> f64 {
        self.volume_qubit_days() / 1e6
    }

    /// Duration in days.
    pub fn days(&self) -> f64 {
        self.seconds / 86_400.0
    }

    /// Duration in hours.
    pub fn hours(&self) -> f64 {
        self.seconds / 3_600.0
    }

    /// Sequential composition: same qubits held longer, or more qubits —
    /// returns the pointwise maximum footprint over the summed duration.
    pub fn then(&self, other: SpaceTime) -> SpaceTime {
        SpaceTime::new(self.qubits.max(other.qubits), self.seconds + other.seconds)
    }

    /// Parallel composition: footprints add, duration is the maximum.
    pub fn alongside(&self, other: SpaceTime) -> SpaceTime {
        SpaceTime::new(self.qubits + other.qubits, self.seconds.max(other.seconds))
    }
}

impl Add for SpaceTime {
    type Output = SpaceTime;
    /// Adds volumes by sequential composition ([`SpaceTime::then`]).
    fn add(self, rhs: SpaceTime) -> SpaceTime {
        self.then(rhs)
    }
}

impl fmt::Display for SpaceTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} Mqubits x {:.2} days = {:.1} Mqubit-days",
            self.qubits / 1e6,
            self.days(),
            self.volume_mqubit_days()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_units() {
        let st = SpaceTime::new(2e6, 86_400.0);
        assert!((st.volume_qubit_days() - 2e6).abs() < 1e-6);
        assert!((st.volume_mqubit_days() - 2.0).abs() < 1e-12);
        assert!((st.days() - 1.0).abs() < 1e-12);
        assert!((st.hours() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn composition() {
        let a = SpaceTime::new(100.0, 10.0);
        let b = SpaceTime::new(50.0, 20.0);
        let seq = a.then(b);
        assert_eq!(seq.qubits, 100.0);
        assert_eq!(seq.seconds, 30.0);
        let par = a.alongside(b);
        assert_eq!(par.qubits, 150.0);
        assert_eq!(par.seconds, 20.0);
        assert_eq!((a + b).seconds, 30.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative() {
        let _ = SpaceTime::new(-1.0, 1.0);
    }

    #[test]
    fn display_in_mqubit_days() {
        let s = SpaceTime::new(19e6, 5.6 * 86_400.0).to_string();
        assert!(s.contains("19.00 Mqubits"), "{s}");
    }
}
