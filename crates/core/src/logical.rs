//! The transversal logical-error model: Eqs. (2)–(6) of the paper.
//!
//! Below threshold, the logical error rate per SE round per logical qubit is
//! exponentially suppressed in the code distance (Eq. 2):
//!
//! ```text
//! p_L = C · Λ^-((d+1)/2),      Λ = p_thres / p_phys .
//! ```
//!
//! Transversal gates add physical error locations to each SE round. With `x`
//! transversal CNOTs per round and decoding factor `α`, the per-CNOT logical
//! error is the paper's Eq. (4):
//!
//! ```text
//! p_L,CNOT = (2C/x) · ((αx + 1)/Λ)^((d+1)/2)
//! ```
//!
//! (factor 2: a CNOT touches two logical qubits; 1/x: the round's cost is
//! amortized over x CNOTs; αx+1: the elevated effective noise). As x → 0
//! this recovers the memory limit, and the effective threshold drops to
//! Eq. (5): `p_thres,eff = p_thres/(αx+1)`.

use crate::params::ErrorModelParams;

/// Logical error rate per qubit per SE round for an idle memory (Eq. 2).
///
/// # Example
///
/// ```
/// use raa_core::{logical, ErrorModelParams};
///
/// let p = ErrorModelParams::paper();
/// // d = 27 at Λ = 10: 0.1 · 10^-14 = 1e-15 per round per qubit.
/// let rate = logical::memory_error_per_round(&p, 27);
/// assert!((rate / 1e-15 - 1.0).abs() < 1e-9);
/// ```
pub fn memory_error_per_round(params: &ErrorModelParams, distance: u32) -> f64 {
    check_distance(distance);
    params.c * params.lambda().powf(-f64::from(distance + 1) / 2.0)
}

/// Logical error rate per qubit per SE round with `x` transversal CNOTs per
/// round (Eq. 3 with the CNOT weight folded into `α`).
pub fn error_per_qubit_round(params: &ErrorModelParams, distance: u32, x: f64) -> f64 {
    check_distance(distance);
    check_x(x);
    let base = (params.alpha * x + 1.0) / params.lambda();
    params.c * base.powf(f64::from(distance + 1) / 2.0)
}

/// Logical error rate per transversal CNOT, both qubits included (Eq. 4).
///
/// `x` is the number of transversal CNOTs per SE round; `x → 0` recovers the
/// memory limit (per-round error divided across many rounds... i.e. diverges
/// per CNOT as rounds accumulate, which is why O(1) rounds per gate wins).
pub fn cnot_error(params: &ErrorModelParams, distance: u32, x: f64) -> f64 {
    check_distance(distance);
    check_x(x);
    let base = (params.alpha * x + 1.0) / params.lambda();
    (2.0 * params.c / x) * base.powf(f64::from(distance + 1) / 2.0)
}

/// Effective threshold under `x` transversal CNOTs per SE round (Eq. 5).
///
/// # Example
///
/// ```
/// use raa_core::{logical, ErrorModelParams};
///
/// let p = ErrorModelParams::paper();
/// // α = 1/6, x = 1: 1% / (7/6) ≈ 0.86%, the paper's quoted value.
/// let eff = logical::effective_threshold(&p, 1.0);
/// assert!((eff - 0.857e-2).abs() < 0.01e-2);
/// ```
pub fn effective_threshold(params: &ErrorModelParams, x: f64) -> f64 {
    check_x_allow_zero(x);
    params.p_thres / (params.alpha * x + 1.0)
}

/// Smallest odd code distance whose per-CNOT logical error (Eq. 4) is at most
/// `target`, or `None` if even `d = max_distance` cannot reach it.
pub fn distance_for_cnot_target(
    params: &ErrorModelParams,
    x: f64,
    target: f64,
    max_distance: u32,
) -> Option<u32> {
    check_target(target);
    (3..=max_distance)
        .step_by(2)
        .find(|&d| cnot_error(params, d, x) <= target)
}

/// Smallest odd code distance whose per-round memory error (Eq. 2) is at most
/// `target`.
pub fn distance_for_memory_target(
    params: &ErrorModelParams,
    target: f64,
    max_distance: u32,
) -> Option<u32> {
    check_target(target);
    (3..=max_distance)
        .step_by(2)
        .find(|&d| memory_error_per_round(params, d) <= target)
}

/// Continuous-distance solution of Eq. (4) for a target per-CNOT error:
/// `d = 2·ln(2C/(x·target)) / ln(Λ/(αx+1)) − 1`. Used inside the volume
/// formula (Eq. 6); returns `None` when the effective suppression base is
/// not below 1 (above effective threshold) or the target is already met at d→0.
pub fn continuous_distance_for_cnot_target(
    params: &ErrorModelParams,
    x: f64,
    target: f64,
) -> Option<f64> {
    check_x(x);
    check_target(target);
    let base = (params.alpha * x + 1.0) / params.lambda();
    if base >= 1.0 {
        return None;
    }
    let ratio = 2.0 * params.c / (x * target);
    if ratio <= 1.0 {
        return Some(0.0);
    }
    Some(2.0 * ratio.ln() / (1.0 / base).ln() - 1.0)
}

/// Space–time volume per logical CNOT as a function of `x` (Eq. 6):
/// `V ∝ d(x)² · (4/x + 1)` with `d(x)` the continuous distance meeting
/// `target`. The first factor is qubits, the second counts the SE-round
/// CNOT layers (4 per round) amortized per transversal CNOT.
///
/// Returns `None` above the effective threshold.
pub fn volume_per_cnot(params: &ErrorModelParams, x: f64, target: f64) -> Option<f64> {
    let d = continuous_distance_for_cnot_target(params, x, target)?;
    Some(d * d * (4.0 / x + 1.0))
}

/// The `x` minimizing [`volume_per_cnot`] on a log grid (the paper finds the
/// optimum at ≲ 1 SE round per CNOT, i.e. x ≳ 1, for its parameters).
pub fn optimal_cnots_per_round(params: &ErrorModelParams, target: f64) -> f64 {
    let mut best = (f64::INFINITY, 1.0);
    let mut x = 0.05f64;
    while x <= 32.0 {
        if let Some(v) = volume_per_cnot(params, x, target) {
            if v < best.0 {
                best = (v, x);
            }
        }
        x *= 1.02;
    }
    best.1
}

fn check_distance(d: u32) {
    assert!(d >= 1, "code distance must be at least 1");
}

fn check_x(x: f64) {
    assert!(
        x.is_finite() && x > 0.0,
        "CNOTs per SE round must be positive, got {x}"
    );
}

fn check_x_allow_zero(x: f64) {
    assert!(
        x.is_finite() && x >= 0.0,
        "CNOTs per SE round must be non-negative, got {x}"
    );
}

fn check_target(t: f64) {
    assert!(
        t.is_finite() && t > 0.0 && t < 1.0,
        "target error must be in (0, 1), got {t}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p() -> ErrorModelParams {
        ErrorModelParams::paper()
    }

    #[test]
    fn memory_error_matches_closed_form() {
        // d = 27, Λ = 10: 0.1 * 10^-14.
        let rate = memory_error_per_round(&p(), 27);
        assert!((rate - 1e-15).abs() / 1e-15 < 1e-9, "{rate}");
    }

    #[test]
    fn eq4_recovers_memory_limit_as_x_vanishes() {
        // x·p_L,CNOT/2 → memory rate as x → 0.
        let d = 15;
        let x = 1e-6;
        let per_round_equivalent = cnot_error(&p(), d, x) * x / 2.0;
        let memory = memory_error_per_round(&p(), d);
        assert!((per_round_equivalent / memory - 1.0).abs() < 1e-3);
    }

    #[test]
    fn effective_threshold_at_one_cnot_per_round() {
        // The paper quotes ~0.86% for α = 1/6 and 0.67% for α = 1/2.
        let eff1 = effective_threshold(&p(), 1.0);
        assert!((eff1 * 100.0 - 0.857).abs() < 0.01, "{eff1}");
        let eff2 = effective_threshold(&p().with_alpha(0.5), 1.0);
        assert!((eff2 * 100.0 - 0.667).abs() < 0.01, "{eff2}");
    }

    #[test]
    fn distance_selection_is_minimal_odd() {
        let d = distance_for_cnot_target(&p(), 1.0, 1e-12, 99).unwrap();
        assert!(d % 2 == 1);
        assert!(cnot_error(&p(), d, 1.0) <= 1e-12);
        if d > 3 {
            assert!(cnot_error(&p(), d - 2, 1.0) > 1e-12);
        }
        // The paper's Table II uses d = 27 for its (stricter) total budget;
        // a bare 1e-12 per-CNOT target needs a bit less.
        assert!((15..=31).contains(&d), "d = {d}");
    }

    #[test]
    fn unreachable_target_returns_none() {
        assert_eq!(distance_for_cnot_target(&p(), 1.0, 1e-30, 9), None);
        // Above effective threshold: no distance helps.
        let hot = p().with_p_phys(9.9e-3); // Λ ≈ 1.01; αx+1 pushes base > 1
        assert_eq!(continuous_distance_for_cnot_target(&hot, 4.0, 1e-12), None);
    }

    #[test]
    fn optimal_x_is_order_one() {
        // Fig. 6(b): optimum at ≲ 1 SE round per CNOT (x ≈ 1-4) for 1e-12.
        let x = optimal_cnots_per_round(&p(), 1e-12);
        assert!((0.5..=8.0).contains(&x), "x = {x}");
    }

    #[test]
    fn volume_tradeoff_is_u_shaped() {
        let t = 1e-12;
        let v_small = volume_per_cnot(&p(), 0.05, t).unwrap();
        let x_opt = optimal_cnots_per_round(&p(), t);
        let v_opt = volume_per_cnot(&p(), x_opt, t).unwrap();
        let v_large = volume_per_cnot(&p(), 30.0, t).unwrap();
        assert!(v_opt < v_small, "opt {v_opt} vs small-x {v_small}");
        assert!(v_opt < v_large, "opt {v_opt} vs large-x {v_large}");
    }

    proptest! {
        /// Eq. 4 is monotonically decreasing in distance.
        #[test]
        fn cnot_error_decreases_with_distance(k in 1u32..30, x in 0.1f64..8.0) {
            let d = 2 * k + 1;
            prop_assert!(cnot_error(&p(), d + 2, x) < cnot_error(&p(), d, x));
        }

        /// Per-round error increases with x (more gates, more noise).
        #[test]
        fn per_round_error_increases_with_x(k in 1u32..30, x in 0.1f64..8.0) {
            let d = 2 * k + 1;
            prop_assert!(
                error_per_qubit_round(&p(), d, x * 1.5) > error_per_qubit_round(&p(), d, x)
            );
        }

        /// Effective threshold decreases with x and α.
        #[test]
        fn threshold_monotonicity(x in 0.0f64..8.0, alpha in 0.01f64..2.0) {
            let params = p().with_alpha(alpha);
            prop_assert!(effective_threshold(&params, x + 0.5) < effective_threshold(&params, x));
            let harder = p().with_alpha(alpha + 0.1);
            prop_assert!(effective_threshold(&harder, 1.0) < effective_threshold(&params, 1.0));
        }

        /// Discrete distance selection brackets the continuous solution.
        #[test]
        fn discrete_vs_continuous_distance(exp in 6i32..14) {
            let target = 10f64.powi(-exp);
            let x = 1.0;
            let cont = continuous_distance_for_cnot_target(&p(), x, target).unwrap();
            let disc = distance_for_cnot_target(&p(), x, target, 99).unwrap();
            prop_assert!(f64::from(disc) + 1e-9 >= cont, "disc {disc} cont {cont}");
            prop_assert!(f64::from(disc) <= cont + 2.0, "disc {disc} cont {cont}");
        }
    }
}
