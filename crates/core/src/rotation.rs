//! Rotation synthesis cost models (the "Rot. synth." building block of the
//! paper's Fig. 1 and the SELECT rotations of §III.3).
//!
//! Two standard routes turn arbitrary-angle Z rotations into the
//! architecture's native resources:
//!
//! * **Direct synthesis**: a Clifford+T approximation of `Rz(θ)` to accuracy
//!   ε costs ≈ `3·log₂(1/ε)` T gates (repeat-until-success/gridsynth-class
//!   constructions), i.e. ≈ `1.5·log₂(1/ε)` CCZ-equivalents through the
//!   catalysis of Ref. [99];
//! * **Phase-gradient addition** [21]: adding the angle register into a
//!   resident `b`-bit phase-gradient state costs one `b`-bit addition
//!   (≈ `b` temporary-AND Toffolis) and is the paper's preferred route for
//!   batched controlled rotations (§III.3).

/// T gates for one `Rz` to accuracy `epsilon` by direct Clifford+T synthesis.
///
/// # Panics
///
/// Panics unless `epsilon` is in (0, 1).
pub fn t_count_direct(epsilon: f64) -> f64 {
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "accuracy must be in (0, 1), got {epsilon}"
    );
    3.0 * (1.0 / epsilon).log2()
}

/// CCZ-equivalents for one direct synthesis (2 T per CCZ via catalysis [99]).
pub fn ccz_count_direct(epsilon: f64) -> f64 {
    t_count_direct(epsilon) / 2.0
}

/// Toffoli count of one phase-gradient rotation at `bits` bits of angle
/// resolution (one temporary-AND per bit of the addition).
pub fn toffoli_count_phase_gradient(bits: u32) -> u64 {
    u64::from(bits)
}

/// Angle resolution (bits) needed so a phase-gradient rotation reaches
/// accuracy `epsilon`: `b ≈ log₂(1/ε)` plus one guard bit.
pub fn phase_gradient_bits(epsilon: f64) -> u32 {
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "accuracy must be in (0, 1), got {epsilon}"
    );
    ((1.0 / epsilon).log2().ceil() as u32) + 1
}

/// Which synthesis route is cheaper in CCZ-equivalents for `rotations`
/// rotations at shared accuracy `epsilon`.
///
/// The phase-gradient route pays the gradient state once (amortized away at
/// volume) but one addition per rotation; direct synthesis pays per rotation
/// with no resident state. For the multi-rotation SELECT workloads of §III.3
/// the gradient route wins (and is what the paper assumes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthesisRoute {
    /// Per-rotation Clifford+T approximation.
    Direct,
    /// Addition into a resident phase-gradient state.
    PhaseGradient,
}

/// Picks the cheaper route and returns it with its per-rotation CCZ cost.
pub fn cheapest_route(epsilon: f64) -> (SynthesisRoute, f64) {
    let direct = ccz_count_direct(epsilon);
    let gradient = toffoli_count_phase_gradient(phase_gradient_bits(epsilon)) as f64;
    if direct <= gradient {
        (SynthesisRoute::Direct, direct)
    } else {
        (SynthesisRoute::PhaseGradient, gradient)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn direct_synthesis_scales_logarithmically() {
        assert!((t_count_direct(1e-10) - 3.0 * 10.0 * 10f64.log2()).abs() < 1e-9);
        assert!(t_count_direct(1e-15) > t_count_direct(1e-10));
    }

    #[test]
    fn gradient_bits_cover_accuracy() {
        assert_eq!(phase_gradient_bits(1e-3), 11);
        assert_eq!(phase_gradient_bits(0.5), 2);
        assert_eq!(toffoli_count_phase_gradient(20), 20);
    }

    #[test]
    fn route_choice_is_sane() {
        // At typical algorithm accuracies the two routes are comparable;
        // both must report finite positive costs and a consistent winner.
        for eps in [1e-6, 1e-10, 1e-15] {
            let (route, cost) = cheapest_route(eps);
            assert!(cost > 0.0);
            let other = match route {
                SynthesisRoute::Direct => {
                    toffoli_count_phase_gradient(phase_gradient_bits(eps)) as f64
                }
                SynthesisRoute::PhaseGradient => ccz_count_direct(eps),
            };
            assert!(cost <= other);
        }
    }

    #[test]
    #[should_panic(expected = "accuracy")]
    fn rejects_bad_epsilon() {
        let _ = t_count_direct(0.0);
    }

    proptest! {
        /// Costs are monotone in the accuracy demand.
        #[test]
        fn monotone_in_accuracy(e1 in 1e-15f64..1e-2, e2 in 1e-15f64..1e-2) {
            let (lo, hi) = if e1 < e2 { (e1, e2) } else { (e2, e1) };
            prop_assert!(t_count_direct(lo) >= t_count_direct(hi));
            prop_assert!(phase_gradient_bits(lo) >= phase_gradient_bits(hi));
        }
    }
}
