//! The paper's primary contribution, as a library: the logical-error model
//! and space–time cost machinery of *Resource Analysis of Low-Overhead
//! Transversal Architectures for Reconfigurable Atom Arrays* (Zhou et al.,
//! ISCA 2025).
//!
//! * [`params`] — the calibrated model constants (`C`, `Λ`, `α`, §III.4);
//! * [`logical`] — Eqs. (2)–(6): memory suppression, per-CNOT error with the
//!   decoding factor `α`, effective threshold, volume-per-CNOT optimization;
//! * [`fit`] — extracting `(α, Λ)` from transversal-circuit simulations
//!   (Fig. 6a);
//! * [`idle`] — idle-storage SE-frequency optimization (Fig. 11c,d);
//! * [`volume`] — qubits × seconds bookkeeping, the optimization objective;
//! * [`budget`] — splitting a failure budget across algorithm components;
//! * [`gadget`] — the common cost interface implemented by every subroutine
//!   generator (factories, adders, look-up tables).
//!
//! # Example: the headline speed-up mechanism
//!
//! ```
//! use raa_core::{logical, ErrorModelParams};
//!
//! let p = ErrorModelParams::paper();
//! // Lattice surgery needs O(d) SE rounds per logical operation; a
//! // transversal gate needs O(1). At d = 27 that is the paper's ~order of
//! // magnitude clock speed-up, while Eq. (4) keeps the logical error low:
//! let per_cnot = logical::cnot_error(&p, 27, 1.0);
//! assert!(per_cnot < 1e-13);
//! // and the effective threshold only drops to ~0.86%:
//! assert!(logical::effective_threshold(&p, 1.0) > 0.85e-2);
//! ```

#![forbid(unsafe_code)]

pub mod budget;
pub mod fit;
pub mod gadget;
pub mod idle;
pub mod logical;
pub mod params;
pub mod rotation;
pub mod volume;

pub use budget::ErrorBudget;
pub use fit::{fit_cnot_model, CnotErrorPoint, FitResult};
pub use gadget::{ArchContext, Gadget, GadgetCost};
pub use params::ErrorModelParams;
pub use volume::SpaceTime;
