//! Fitting the logical-error model to simulation data (Fig. 6a).
//!
//! Given measured per-CNOT logical error rates at several `(x, d)` points,
//! fit the decoding factor `α` and suppression base `Λ` of Eq. (4) by
//! minimizing squared log-residuals, with the prefactor `C` fixed (the paper
//! keeps `C = 0.1` for literature consistency and takes only the relative
//! coefficients from the fit, finding `α ≈ 1/6` and `Λ` closer to 20 for the
//! MLE decoder at `p_phys = 0.1%`).

use crate::params::ErrorModelParams;

/// One measured data point for the Eq. (4) fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CnotErrorPoint {
    /// Transversal CNOTs per SE round.
    pub x: f64,
    /// Code distance.
    pub distance: u32,
    /// Measured logical error per CNOT (both qubits).
    pub error_per_cnot: f64,
}

/// Result of fitting Eq. (4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitResult {
    /// Fitted decoding factor α.
    pub alpha: f64,
    /// Fitted suppression base Λ.
    pub lambda: f64,
    /// Prefactor C used (held fixed).
    pub c: f64,
    /// Mean squared log-residual at the optimum.
    pub residual: f64,
}

impl FitResult {
    /// Converts the fit into model parameters (at the paper's `p_thres = 1%`,
    /// so `p_phys = p_thres/Λ`).
    pub fn to_params(&self) -> ErrorModelParams {
        let p_thres = 1e-2;
        ErrorModelParams {
            c: self.c,
            p_phys: p_thres / self.lambda,
            p_thres,
            alpha: self.alpha,
        }
    }
}

fn model_log(c: f64, alpha: f64, lambda: f64, x: f64, d: u32) -> f64 {
    let base = (alpha * x + 1.0) / lambda;
    (2.0 * c / x).ln() + f64::from(d + 1) / 2.0 * base.ln()
}

fn residual(points: &[CnotErrorPoint], c: f64, alpha: f64, lambda: f64) -> f64 {
    let mut sum = 0.0;
    for p in points {
        let r = model_log(c, alpha, lambda, p.x, p.distance) - p.error_per_cnot.ln();
        sum += r * r;
    }
    sum / points.len() as f64
}

/// Fits `(α, Λ)` of Eq. (4) to the data with `C` held fixed.
///
/// Uses a coarse log-grid search followed by coordinate refinement; robust
/// for the handful-of-points fits this is used for.
///
/// # Panics
///
/// Panics if `points` is empty or any error rate is not in (0, 1).
///
/// # Example
///
/// ```
/// use raa_core::fit::{fit_cnot_model, CnotErrorPoint};
/// use raa_core::logical;
/// use raa_core::ErrorModelParams;
///
/// // Synthesize data from the model itself and recover the parameters.
/// let truth = ErrorModelParams::paper();
/// let points: Vec<CnotErrorPoint> = [(0.5, 11), (1.0, 11), (2.0, 15), (4.0, 15)]
///     .iter()
///     .map(|&(x, d)| CnotErrorPoint {
///         x,
///         distance: d,
///         error_per_cnot: logical::cnot_error(&truth, d, x),
///     })
///     .collect();
/// let fit = fit_cnot_model(&points, 0.1);
/// assert!((fit.alpha - 1.0 / 6.0).abs() < 0.02);
/// assert!((fit.lambda - 10.0).abs() < 0.5);
/// ```
pub fn fit_cnot_model(points: &[CnotErrorPoint], c: f64) -> FitResult {
    assert!(!points.is_empty(), "need at least one data point");
    for p in points {
        assert!(
            p.error_per_cnot > 0.0 && p.error_per_cnot < 1.0,
            "error rates must be in (0, 1), got {}",
            p.error_per_cnot
        );
        assert!(p.x > 0.0, "x must be positive");
    }
    // Coarse grid.
    let mut best = (f64::INFINITY, 0.2, 10.0);
    let mut alpha = 0.01;
    while alpha <= 3.0 {
        let mut lambda = 1.5;
        while lambda <= 60.0 {
            let r = residual(points, c, alpha, lambda);
            if r < best.0 {
                best = (r, alpha, lambda);
            }
            lambda *= 1.1;
        }
        alpha *= 1.1;
    }
    // Coordinate refinement.
    let (mut r_best, mut a_best, mut l_best) = best;
    let mut step = 0.3;
    for _ in 0..60 {
        let mut improved = false;
        for (da, dl) in [
            (1.0 + step, 1.0),
            (1.0 / (1.0 + step), 1.0),
            (1.0, 1.0 + step),
            (1.0, 1.0 / (1.0 + step)),
        ] {
            let (a, l) = (a_best * da, l_best * dl);
            let r = residual(points, c, a, l);
            if r < r_best {
                r_best = r;
                a_best = a;
                l_best = l;
                improved = true;
            }
        }
        if !improved {
            step *= 0.5;
            if step < 1e-6 {
                break;
            }
        }
    }
    FitResult {
        alpha: a_best,
        lambda: l_best,
        c,
        residual: r_best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical;
    use proptest::prelude::*;

    fn synthetic(params: &ErrorModelParams, grid: &[(f64, u32)]) -> Vec<CnotErrorPoint> {
        grid.iter()
            .map(|&(x, d)| CnotErrorPoint {
                x,
                distance: d,
                error_per_cnot: logical::cnot_error(params, d, x),
            })
            .collect()
    }

    #[test]
    fn recovers_paper_parameters_from_clean_data() {
        let truth = ErrorModelParams::paper();
        let points = synthetic(
            &truth,
            &[(0.25, 7), (0.5, 9), (1.0, 11), (2.0, 13), (4.0, 15)],
        );
        let fit = fit_cnot_model(&points, truth.c);
        assert!(
            (fit.alpha - truth.alpha).abs() < 0.01,
            "alpha {}",
            fit.alpha
        );
        assert!(
            (fit.lambda - truth.lambda()).abs() < 0.3,
            "lambda {}",
            fit.lambda
        );
        assert!(fit.residual < 1e-6);
    }

    #[test]
    fn recovers_larger_alpha() {
        let truth = ErrorModelParams::paper().with_alpha(0.5);
        let points = synthetic(&truth, &[(0.5, 7), (1.0, 9), (2.0, 11), (4.0, 13)]);
        let fit = fit_cnot_model(&points, truth.c);
        assert!((fit.alpha - 0.5).abs() < 0.05, "alpha {}", fit.alpha);
    }

    #[test]
    fn tolerates_noisy_data() {
        let truth = ErrorModelParams::paper();
        let mut points = synthetic(&truth, &[(0.5, 7), (1.0, 9), (2.0, 11), (4.0, 13)]);
        for (i, p) in points.iter_mut().enumerate() {
            // ±20% multiplicative noise.
            p.error_per_cnot *= 1.0 + 0.2 * if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let fit = fit_cnot_model(&points, truth.c);
        assert!(
            (fit.alpha - truth.alpha).abs() < 0.15,
            "alpha {}",
            fit.alpha
        );
        assert!((fit.lambda - 10.0).abs() < 3.0, "lambda {}", fit.lambda);
    }

    #[test]
    fn to_params_round_trip() {
        let fit = FitResult {
            alpha: 0.25,
            lambda: 20.0,
            c: 0.1,
            residual: 0.0,
        };
        let params = fit.to_params();
        assert!((params.lambda() - 20.0).abs() < 1e-9);
        assert_eq!(params.alpha, 0.25);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        let _ = fit_cnot_model(&[], 0.1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Round-trips across a range of true parameters.
        #[test]
        fn round_trip(alpha in 0.05f64..1.0, lambda in 4.0f64..30.0) {
            let truth = ErrorModelParams {
                c: 0.1,
                p_phys: 1e-2 / lambda,
                p_thres: 1e-2,
                alpha,
            };
            let grid = [(0.5, 9u32), (1.0, 11), (2.0, 13), (4.0, 15), (1.0, 17)];
            let points = synthetic(&truth, &grid);
            // Skip degenerate data (error rates too close to 1).
            prop_assume!(points.iter().all(|p| p.error_per_cnot < 0.3));
            let fit = fit_cnot_model(&points, 0.1);
            prop_assert!((fit.alpha - alpha).abs() / alpha < 0.1,
                         "alpha {} vs {}", fit.alpha, alpha);
            prop_assert!((fit.lambda - lambda).abs() / lambda < 0.1,
                         "lambda {} vs {}", fit.lambda, lambda);
        }
    }
}
