//! Fitting the logical-error model to simulation data (Fig. 6a).
//!
//! Given measured per-CNOT logical error rates at several `(x, d)` points,
//! fit the decoding factor `α` and suppression base `Λ` of Eq. (4) by
//! minimizing squared log-residuals, with the prefactor `C` fixed (the paper
//! keeps `C = 0.1` for literature consistency and takes only the relative
//! coefficients from the fit, finding `α ≈ 1/6` and `Λ` closer to 20 for the
//! MLE decoder at `p_phys = 0.1%`).

use crate::params::ErrorModelParams;

/// One measured data point for the Eq. (4) fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CnotErrorPoint {
    /// Transversal CNOTs per SE round.
    pub x: f64,
    /// Code distance.
    pub distance: u32,
    /// Measured logical error per CNOT (both qubits).
    pub error_per_cnot: f64,
}

impl CnotErrorPoint {
    /// Whether the point can enter a fit: finite positive `x`, and an error
    /// rate strictly inside `(0, 1)`.
    pub fn is_fittable(&self) -> bool {
        self.x.is_finite()
            && self.x > 0.0
            && self.error_per_cnot.is_finite()
            && self.error_per_cnot > 0.0
            && self.error_per_cnot < 1.0
    }
}

/// Result of fitting Eq. (4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitResult {
    /// Fitted decoding factor α.
    pub alpha: f64,
    /// Fitted suppression base Λ.
    pub lambda: f64,
    /// Prefactor C used (held fixed).
    pub c: f64,
    /// Mean squared log-residual at the optimum.
    pub residual: f64,
}

impl FitResult {
    /// Converts the fit into model parameters anchored at the physical
    /// error rate `p_phys` the fitted sweep actually ran at: the fitted
    /// suppression base fixes the threshold as `p_thres = Λ · p_phys`
    /// (Eq. 2), so the returned parameters reproduce the sweep's measured
    /// rates at its own noise level. Re-anchor to a different hardware rate
    /// with [`ErrorModelParams::with_p_phys`] (which keeps `p_thres`).
    ///
    /// # Panics
    ///
    /// Panics if `p_phys` is not finite and positive, or if the fitted Λ is
    /// not above 1 (no suppression — the parameters would put the model at
    /// or above threshold).
    pub fn to_params(&self, p_phys: f64) -> ErrorModelParams {
        assert!(
            p_phys.is_finite() && p_phys > 0.0,
            "sweep p_phys must be finite and positive, got {p_phys}"
        );
        assert!(
            self.lambda > 1.0,
            "fitted Lambda must exceed 1 (below-threshold), got {}",
            self.lambda
        );
        ErrorModelParams {
            c: self.c,
            p_phys,
            p_thres: self.lambda * p_phys,
            alpha: self.alpha,
        }
    }

    /// Converts the fit into model parameters at the paper's assumed
    /// `p_thres = 1%` (so `p_phys = p_thres/Λ`) — the historical behaviour,
    /// appropriate only when the fit came from data at the paper's operating
    /// point. For simulation-calibrated parameters use
    /// [`FitResult::to_params`] with the sweep's actual physical error rate.
    pub fn to_params_paper(&self) -> ErrorModelParams {
        let p_thres = 1e-2;
        ErrorModelParams {
            c: self.c,
            p_phys: p_thres / self.lambda,
            p_thres,
            alpha: self.alpha,
        }
    }
}

fn model_log(c: f64, alpha: f64, lambda: f64, x: f64, d: u32) -> f64 {
    let base = (alpha * x + 1.0) / lambda;
    (2.0 * c / x).ln() + f64::from(d + 1) / 2.0 * base.ln()
}

fn residual(points: &[CnotErrorPoint], c: f64, alpha: f64, lambda: f64) -> f64 {
    let mut sum = 0.0;
    for p in points {
        let r = model_log(c, alpha, lambda, p.x, p.distance) - p.error_per_cnot.ln();
        sum += r * r;
    }
    sum / points.len() as f64
}

/// Fits `(α, Λ)` of Eq. (4) to the data with `C` held fixed.
///
/// Uses a coarse log-grid search followed by coordinate refinement; robust
/// for the handful-of-points fits this is used for.
///
/// Returns `None` when the data cannot support a meaningful two-parameter
/// fit instead of producing NaN/∞ or a misleading optimum:
///
/// * `points` is empty, or `c` is not finite and positive;
/// * any point is unusable (non-finite or non-positive `x`, error rate
///   outside `(0, 1)` — saturated and zero-failure points must be filtered
///   by the caller, see `raa-sim`'s `analysis::cnot_points`);
/// * all points share one `(x, d)` coordinate (zero variance: α and Λ are
///   not separately identifiable).
///
/// # Example
///
/// ```
/// use raa_core::fit::{fit_cnot_model, CnotErrorPoint};
/// use raa_core::logical;
/// use raa_core::ErrorModelParams;
///
/// // Synthesize data from the model itself and recover the parameters.
/// let truth = ErrorModelParams::paper();
/// let points: Vec<CnotErrorPoint> = [(0.5, 11), (1.0, 11), (2.0, 15), (4.0, 15)]
///     .iter()
///     .map(|&(x, d)| CnotErrorPoint {
///         x,
///         distance: d,
///         error_per_cnot: logical::cnot_error(&truth, d, x),
///     })
///     .collect();
/// let fit = fit_cnot_model(&points, 0.1).expect("distinct, in-range points");
/// assert!((fit.alpha - 1.0 / 6.0).abs() < 0.02);
/// assert!((fit.lambda - 10.0).abs() < 0.5);
/// assert!(fit_cnot_model(&[], 0.1).is_none());
/// ```
pub fn fit_cnot_model(points: &[CnotErrorPoint], c: f64) -> Option<FitResult> {
    if points.is_empty() || !(c.is_finite() && c > 0.0) {
        return None;
    }
    if points.iter().any(|p| !p.is_fittable()) {
        return None;
    }
    // A two-parameter fit needs at least two distinct (x, d) coordinates;
    // replicated shots at one coordinate carry no slope information and the
    // grid search would hand back an arbitrary ridge point.
    let distinct = {
        let mut coords: Vec<(u64, u32)> =
            points.iter().map(|p| (p.x.to_bits(), p.distance)).collect();
        coords.sort_unstable();
        coords.dedup();
        coords.len()
    };
    if distinct < 2 {
        return None;
    }
    // Coarse grid.
    let mut best = (f64::INFINITY, 0.2, 10.0);
    let mut alpha = 0.01;
    while alpha <= 3.0 {
        let mut lambda = 1.5;
        while lambda <= 60.0 {
            let r = residual(points, c, alpha, lambda);
            if r < best.0 {
                best = (r, alpha, lambda);
            }
            lambda *= 1.1;
        }
        alpha *= 1.1;
    }
    // Coordinate refinement.
    let (mut r_best, mut a_best, mut l_best) = best;
    let mut step = 0.3;
    for _ in 0..60 {
        let mut improved = false;
        for (da, dl) in [
            (1.0 + step, 1.0),
            (1.0 / (1.0 + step), 1.0),
            (1.0, 1.0 + step),
            (1.0, 1.0 / (1.0 + step)),
        ] {
            let (a, l) = (a_best * da, l_best * dl);
            let r = residual(points, c, a, l);
            if r < r_best {
                r_best = r;
                a_best = a;
                l_best = l;
                improved = true;
            }
        }
        if !improved {
            step *= 0.5;
            if step < 1e-6 {
                break;
            }
        }
    }
    if !(a_best.is_finite() && l_best.is_finite() && r_best.is_finite()) {
        return None;
    }
    Some(FitResult {
        alpha: a_best,
        lambda: l_best,
        c,
        residual: r_best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical;
    use proptest::prelude::*;

    fn synthetic(params: &ErrorModelParams, grid: &[(f64, u32)]) -> Vec<CnotErrorPoint> {
        grid.iter()
            .map(|&(x, d)| CnotErrorPoint {
                x,
                distance: d,
                error_per_cnot: logical::cnot_error(params, d, x),
            })
            .collect()
    }

    #[test]
    fn recovers_paper_parameters_from_clean_data() {
        let truth = ErrorModelParams::paper();
        let points = synthetic(
            &truth,
            &[(0.25, 7), (0.5, 9), (1.0, 11), (2.0, 13), (4.0, 15)],
        );
        let fit = fit_cnot_model(&points, truth.c).expect("clean data");
        assert!(
            (fit.alpha - truth.alpha).abs() < 0.01,
            "alpha {}",
            fit.alpha
        );
        assert!(
            (fit.lambda - truth.lambda()).abs() < 0.3,
            "lambda {}",
            fit.lambda
        );
        assert!(fit.residual < 1e-6);
    }

    #[test]
    fn recovers_larger_alpha() {
        let truth = ErrorModelParams::paper().with_alpha(0.5);
        let points = synthetic(&truth, &[(0.5, 7), (1.0, 9), (2.0, 11), (4.0, 13)]);
        let fit = fit_cnot_model(&points, truth.c).expect("clean data");
        assert!((fit.alpha - 0.5).abs() < 0.05, "alpha {}", fit.alpha);
    }

    #[test]
    fn tolerates_noisy_data() {
        let truth = ErrorModelParams::paper();
        let mut points = synthetic(&truth, &[(0.5, 7), (1.0, 9), (2.0, 11), (4.0, 13)]);
        for (i, p) in points.iter_mut().enumerate() {
            // ±20% multiplicative noise.
            p.error_per_cnot *= 1.0 + 0.2 * if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let fit = fit_cnot_model(&points, truth.c).expect("noisy but distinct data");
        assert!(
            (fit.alpha - truth.alpha).abs() < 0.15,
            "alpha {}",
            fit.alpha
        );
        assert!((fit.lambda - 10.0).abs() < 3.0, "lambda {}", fit.lambda);
    }

    #[test]
    fn to_params_anchors_threshold_at_sweep_noise() {
        let fit = FitResult {
            alpha: 0.25,
            lambda: 20.0,
            c: 0.1,
            residual: 0.0,
        };
        // Regression for the hard-coded p_thres = 1e-2: a sweep at
        // p2 = 4e-3 (≠ 1e-3) must anchor the threshold at Λ·p_phys, not at
        // the paper's assumed 1%.
        let p_sweep = 4e-3;
        let params = fit.to_params(p_sweep);
        assert_eq!(params.p_phys, p_sweep);
        assert!((params.p_thres - 20.0 * p_sweep).abs() < 1e-15);
        assert!((params.lambda() - 20.0).abs() < 1e-9);
        assert_eq!(params.alpha, 0.25);
        // Re-anchoring to hardware noise keeps the calibrated threshold.
        let hw = params.with_p_phys(1e-3);
        assert_eq!(hw.p_thres, params.p_thres);
        assert!((hw.lambda() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn to_params_paper_keeps_one_percent_threshold() {
        let fit = FitResult {
            alpha: 0.25,
            lambda: 20.0,
            c: 0.1,
            residual: 0.0,
        };
        let params = fit.to_params_paper();
        assert_eq!(params.p_thres, 1e-2);
        assert!((params.lambda() - 20.0).abs() < 1e-9);
        assert_eq!(params.alpha, 0.25);
    }

    #[test]
    #[should_panic(expected = "below-threshold")]
    fn to_params_rejects_unsuppressed_fit() {
        let fit = FitResult {
            alpha: 0.25,
            lambda: 0.9,
            c: 0.1,
            residual: 0.0,
        };
        let _ = fit.to_params(4e-3);
    }

    #[test]
    fn rejects_empty_and_degenerate_inputs() {
        assert!(fit_cnot_model(&[], 0.1).is_none(), "empty");
        let p = |x: f64, d: u32, e: f64| CnotErrorPoint {
            x,
            distance: d,
            error_per_cnot: e,
        };
        // All points at one (x, d): zero variance, not identifiable.
        let replicated = vec![p(1.0, 3, 0.01), p(1.0, 3, 0.012), p(1.0, 3, 0.011)];
        assert!(fit_cnot_model(&replicated, 0.1).is_none(), "one coordinate");
        // Out-of-range or non-finite rates.
        assert!(fit_cnot_model(&[p(1.0, 3, 0.0), p(2.0, 3, 0.01)], 0.1).is_none());
        assert!(fit_cnot_model(&[p(1.0, 3, 1.0), p(2.0, 3, 0.01)], 0.1).is_none());
        assert!(fit_cnot_model(&[p(1.0, 3, f64::NAN), p(2.0, 3, 0.01)], 0.1).is_none());
        // Bad x.
        assert!(fit_cnot_model(&[p(0.0, 3, 0.01), p(2.0, 3, 0.02)], 0.1).is_none());
        assert!(fit_cnot_model(&[p(f64::INFINITY, 3, 0.01), p(2.0, 3, 0.02)], 0.1).is_none());
        // Bad prefactor.
        assert!(fit_cnot_model(&[p(1.0, 3, 0.01), p(2.0, 3, 0.02)], 0.0).is_none());
        assert!(fit_cnot_model(&[p(1.0, 3, 0.01), p(2.0, 3, 0.02)], f64::NAN).is_none());
        // Two distances at one x still identify the exponent: fittable.
        assert!(fit_cnot_model(&[p(1.0, 3, 0.05), p(1.0, 5, 0.01)], 0.1).is_some());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Round-trips across a range of true parameters.
        #[test]
        fn round_trip(alpha in 0.05f64..1.0, lambda in 4.0f64..30.0) {
            let truth = ErrorModelParams {
                c: 0.1,
                p_phys: 1e-2 / lambda,
                p_thres: 1e-2,
                alpha,
            };
            let grid = [(0.5, 9u32), (1.0, 11), (2.0, 13), (4.0, 15), (1.0, 17)];
            let points = synthetic(&truth, &grid);
            // Skip degenerate data (error rates too close to 1).
            prop_assume!(points.iter().all(|p| p.error_per_cnot < 0.3));
            let fit = fit_cnot_model(&points, 0.1).expect("distinct grid");
            prop_assert!((fit.alpha - alpha).abs() / alpha < 0.1,
                         "alpha {} vs {}", fit.alpha, alpha);
            prop_assert!((fit.lambda - lambda).abs() / lambda < 0.1,
                         "lambda {} vs {}", fit.lambda, lambda);
        }
    }
}
