//! The gadget cost abstraction: every algorithmic subroutine reports a
//! common space/time/error/magic-state cost that the architecture-level
//! optimizer composes (paper §III.1: "these subroutine generators take as
//! input certain parameters ... and output the layout, together with an
//! estimate of the space and time cost of the subroutine, as well as the
//! resulting logical error rate").

use crate::params::ErrorModelParams;
use crate::volume::SpaceTime;
use raa_physics::{CycleModel, PhysicalParams};
use std::fmt;

/// Shared architectural context threaded through gadget cost evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchContext {
    /// Platform timing parameters (Table I).
    pub physical: PhysicalParams,
    /// Logical error model parameters (§III.4).
    pub error: ErrorModelParams,
    /// Code distance used by compute patches.
    pub distance: u32,
    /// Transversal CNOTs per SE round (the paper fixes 1 after Fig. 11).
    pub cnots_per_round: f64,
}

impl ArchContext {
    /// The paper's baseline context: Table I physics, standard error model,
    /// distance 27 and one SE round per transversal gate.
    pub fn paper() -> Self {
        Self {
            physical: PhysicalParams::default(),
            error: ErrorModelParams::paper(),
            distance: 27,
            cnots_per_round: 1.0,
        }
    }

    /// The QEC cycle timing model at this context's distance.
    pub fn cycle(&self) -> CycleModel {
        CycleModel::new(&self.physical, self.distance)
    }

    /// Reaction time of the control system.
    pub fn reaction_time(&self) -> f64 {
        self.physical.reaction_time()
    }

    /// Physical atoms per logical patch (data + ancilla).
    pub fn atoms_per_patch(&self) -> f64 {
        raa_physics::geometry::atoms_per_patch(self.distance) as f64
    }

    /// Logical error per transversal CNOT in this context (Eq. 4).
    pub fn cnot_error(&self) -> f64 {
        crate::logical::cnot_error(&self.error, self.distance, self.cnots_per_round)
    }

    /// Logical error per qubit per SE round in this context.
    pub fn error_per_qubit_round(&self) -> f64 {
        crate::logical::error_per_qubit_round(&self.error, self.distance, self.cnots_per_round)
    }

    /// Returns a copy with a different code distance.
    pub fn with_distance(mut self, distance: u32) -> Self {
        assert!(distance >= 3, "distance must be at least 3");
        self.distance = distance;
        self
    }
}

/// The composite cost of invoking a gadget once.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GadgetCost {
    /// Physical qubits held while the gadget runs.
    pub qubits: f64,
    /// Wall-clock duration of one invocation, in seconds.
    pub seconds: f64,
    /// Logical error probability contributed by one invocation.
    pub logical_error: f64,
    /// |CCZ⟩ magic states consumed per invocation.
    pub ccz_states: f64,
}

impl GadgetCost {
    /// The space–time block of one invocation.
    pub fn space_time(&self) -> SpaceTime {
        SpaceTime::new(self.qubits, self.seconds)
    }

    /// Scales all extensive quantities for `n` sequential invocations.
    pub fn repeat(&self, n: f64) -> GadgetCost {
        assert!(
            n >= 0.0 && n.is_finite(),
            "repeat count must be non-negative"
        );
        GadgetCost {
            qubits: self.qubits,
            seconds: self.seconds * n,
            logical_error: (self.logical_error * n).min(1.0),
            ccz_states: self.ccz_states * n,
        }
    }

    /// Combines with a gadget running concurrently (footprints add, duration
    /// is the maximum, errors and magic-state demand add).
    pub fn alongside(&self, other: GadgetCost) -> GadgetCost {
        GadgetCost {
            qubits: self.qubits + other.qubits,
            seconds: self.seconds.max(other.seconds),
            logical_error: (self.logical_error + other.logical_error).min(1.0),
            ccz_states: self.ccz_states + other.ccz_states,
        }
    }
}

impl fmt::Display for GadgetCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3e} qubits for {:.3e} s, p_err {:.3e}, {:.1} CCZ",
            self.qubits, self.seconds, self.logical_error, self.ccz_states
        )
    }
}

/// An algorithmic building block with a parameterized cost (§III.1).
pub trait Gadget {
    /// A short human-readable name ("cuccaro-adder", "lookup-table", ...).
    fn name(&self) -> &str;

    /// The cost of one invocation in the given context.
    fn cost(&self, ctx: &ArchContext) -> GadgetCost;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_context_values() {
        let ctx = ArchContext::paper();
        assert_eq!(ctx.distance, 27);
        assert!((ctx.reaction_time() - 1e-3).abs() < 1e-12);
        // Per-CNOT logical error at d=27, x=1, α=1/6:
        // 2·0.1·(7/6/10)^14 ≈ 2e-1·(0.1167)^14 ≈ 1.2e-14.
        let e = ctx.cnot_error();
        assert!(e > 1e-15 && e < 1e-13, "e = {e}");
    }

    #[test]
    fn cost_composition() {
        let a = GadgetCost {
            qubits: 100.0,
            seconds: 1.0,
            logical_error: 1e-6,
            ccz_states: 2.0,
        };
        let b = GadgetCost {
            qubits: 50.0,
            seconds: 2.0,
            logical_error: 1e-6,
            ccz_states: 0.0,
        };
        let par = a.alongside(b);
        assert_eq!(par.qubits, 150.0);
        assert_eq!(par.seconds, 2.0);
        assert!((par.logical_error - 2e-6).abs() < 1e-18);
        let seq = a.repeat(10.0);
        assert_eq!(seq.seconds, 10.0);
        assert!((seq.logical_error - 1e-5).abs() < 1e-15);
        assert_eq!(seq.ccz_states, 20.0);
    }

    #[test]
    fn error_saturates_at_one() {
        let a = GadgetCost {
            qubits: 1.0,
            seconds: 1.0,
            logical_error: 0.4,
            ccz_states: 0.0,
        };
        assert_eq!(a.repeat(10.0).logical_error, 1.0);
        assert_eq!(a.alongside(a.repeat(2.0)).logical_error, 1.0);
    }

    #[test]
    fn space_time_conversion() {
        let a = GadgetCost {
            qubits: 1e6,
            seconds: 86_400.0,
            logical_error: 0.0,
            ccz_states: 0.0,
        };
        assert!((a.space_time().volume_mqubit_days() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn context_distance_override() {
        let ctx = ArchContext::paper().with_distance(15);
        assert_eq!(ctx.distance, 15);
        assert!(ctx.cnot_error() > ArchContext::paper().cnot_error());
    }

    #[test]
    fn display_nonempty() {
        assert!(!GadgetCost::default().to_string().is_empty());
    }
}
