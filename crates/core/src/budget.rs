//! Logical-error budgeting across an algorithm's components.
//!
//! The paper allocates its total failure budget across sources: e.g. the
//! 2048-bit factoring run gives the ~3×10⁹ CCZ states a 5% collective budget,
//! which sets the per-CCZ target at 1.6×10⁻¹¹ and hence the per-|T⟩
//! cultivation target at 7.7×10⁻⁷ via the 28 p² factory law (§III.6).

use std::collections::BTreeMap;
use std::fmt;

/// A named share of a total error budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetShare {
    /// Fraction of the total budget.
    pub fraction: f64,
    /// Number of identical operations sharing this slice.
    pub operations: f64,
}

impl BudgetShare {
    /// The per-operation error target implied by `total × fraction / ops`.
    pub fn per_operation_target(&self, total: f64) -> f64 {
        total * self.fraction / self.operations.max(1.0)
    }
}

/// An error budget split across named components.
///
/// # Example
///
/// ```
/// use raa_core::budget::ErrorBudget;
///
/// // The paper's factoring allocation: 5% of failures to CCZ states.
/// let mut budget = ErrorBudget::new(1.0);
/// budget.allocate("ccz", 0.05, 3.1e9);
/// let per_ccz = budget.per_operation_target("ccz").unwrap();
/// assert!((per_ccz / 1.6e-11 - 1.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBudget {
    total: f64,
    shares: BTreeMap<String, BudgetShare>,
}

impl ErrorBudget {
    /// Creates a budget with total acceptable failure probability `total`.
    ///
    /// # Panics
    ///
    /// Panics if `total` is not in (0, 1].
    pub fn new(total: f64) -> Self {
        assert!(
            total > 0.0 && total <= 1.0,
            "total budget must be in (0, 1], got {total}"
        );
        Self {
            total,
            shares: BTreeMap::new(),
        }
    }

    /// The total failure budget.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Allocates `fraction` of the budget to `name`, split over `operations`
    /// identical operations.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is not in (0, 1] or allocations would exceed 1.
    pub fn allocate(&mut self, name: &str, fraction: f64, operations: f64) -> &mut Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1], got {fraction}"
        );
        let committed: f64 = self
            .shares
            .iter()
            .filter(|(k, _)| k.as_str() != name)
            .map(|(_, s)| s.fraction)
            .sum();
        assert!(
            committed + fraction <= 1.0 + 1e-9,
            "allocations exceed the budget: {committed} + {fraction} > 1"
        );
        self.shares.insert(
            name.to_string(),
            BudgetShare {
                fraction,
                operations,
            },
        );
        self
    }

    /// The per-operation target for component `name`, if allocated.
    pub fn per_operation_target(&self, name: &str) -> Option<f64> {
        self.shares
            .get(name)
            .map(|s| s.per_operation_target(self.total))
    }

    /// The absolute error allowance of component `name`.
    pub fn component_total(&self, name: &str) -> Option<f64> {
        self.shares.get(name).map(|s| s.fraction * self.total)
    }

    /// Fraction of the budget not yet allocated.
    pub fn unallocated_fraction(&self) -> f64 {
        (1.0 - self.shares.values().map(|s| s.fraction).sum::<f64>()).max(0.0)
    }

    /// Checks an achieved error vector against the budget: true when every
    /// component's total achieved error is within its allocation.
    pub fn is_satisfied_by<'a, I>(&self, achieved: I) -> bool
    where
        I: IntoIterator<Item = (&'a str, f64)>,
    {
        achieved.into_iter().all(|(name, err)| {
            self.component_total(name)
                .is_some_and(|allowed| err <= allowed * (1.0 + 1e-9))
        })
    }
}

impl fmt::Display for ErrorBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "budget {:.3}: ", self.total)?;
        for (name, share) in &self.shares {
            write!(
                f,
                "[{} {:.1}% / {:.2e} ops] ",
                name,
                share.fraction * 100.0,
                share.operations
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ccz_budget() {
        // 5% of the run budget over 3.1e9 CCZ states → 1.6e-11 per CCZ.
        let mut b = ErrorBudget::new(1.0);
        b.allocate("ccz", 0.05, 3.1e9);
        let t = b.per_operation_target("ccz").unwrap();
        assert!((t / 1.6e-11 - 1.0).abs() < 0.05, "t = {t}");
    }

    #[test]
    fn allocation_bookkeeping() {
        let mut b = ErrorBudget::new(0.5);
        b.allocate("a", 0.4, 100.0).allocate("b", 0.4, 10.0);
        assert!((b.unallocated_fraction() - 0.2).abs() < 1e-12);
        assert!((b.component_total("a").unwrap() - 0.2).abs() < 1e-12);
        assert!((b.per_operation_target("b").unwrap() - 0.02).abs() < 1e-12);
        assert_eq!(b.per_operation_target("missing"), None);
    }

    #[test]
    fn satisfaction_check() {
        let mut b = ErrorBudget::new(1.0);
        b.allocate("x", 0.5, 1.0);
        assert!(b.is_satisfied_by([("x", 0.4)]));
        assert!(!b.is_satisfied_by([("x", 0.6)]));
        assert!(!b.is_satisfied_by([("unknown", 0.0)]));
    }

    #[test]
    fn reallocation_replaces() {
        let mut b = ErrorBudget::new(1.0);
        b.allocate("x", 0.9, 1.0);
        b.allocate("x", 0.5, 1.0); // replace, not accumulate
        b.allocate("y", 0.5, 1.0);
        assert!(b.unallocated_fraction() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn over_allocation_panics() {
        let mut b = ErrorBudget::new(1.0);
        b.allocate("a", 0.7, 1.0).allocate("b", 0.7, 1.0);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn rejects_bad_total() {
        let _ = ErrorBudget::new(0.0);
    }
}
