//! Calibrated parameters of the transversal logical-error model (§III.4).

use std::fmt;

/// Parameters of the heuristic logical-error model, Eqs. (2)–(6) of the paper.
///
/// The defaults are the paper's standard literature-consistent values:
/// `C = 0.1`, `Λ = 10` (i.e. `p_thres = 1%` at `p_phys = 0.1%`), and the
/// decoding factor `α = 1/6` extracted from fitting the correlated-decoding
/// simulations of Ref. [17] (paper Fig. 6a). With these, one transversal CNOT
/// per SE round gives an effective threshold of `1%/(1 + 1/6) ≈ 0.86%`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModelParams {
    /// Prefactor `C` of the exponential suppression (≈ 0.1 for surface codes).
    pub c: f64,
    /// Characteristic physical error rate `p_phys`.
    pub p_phys: f64,
    /// Memory threshold `p_thres` (≈ 1% for the surface code).
    pub p_thres: f64,
    /// Decoding factor `α`: how much one transversal CNOT raises the
    /// effective noise rate per SE round, relative to the SE gates themselves.
    pub alpha: f64,
}

impl Default for ErrorModelParams {
    fn default() -> Self {
        Self {
            c: 0.1,
            p_phys: 1e-3,
            p_thres: 1e-2,
            alpha: 1.0 / 6.0,
        }
    }
}

impl ErrorModelParams {
    /// The paper's standard parameter set (same as [`Default`]).
    pub fn paper() -> Self {
        Self::default()
    }

    /// The suppression base `Λ = p_thres / p_phys` (Eq. 2); 10 by default.
    pub fn lambda(&self) -> f64 {
        self.p_thres / self.p_phys
    }

    /// Returns a copy with a different decoding factor (Fig. 13a sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or non-finite.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "decoding factor must be non-negative, got {alpha}"
        );
        self.alpha = alpha;
        self
    }

    /// Returns a copy with a different physical error rate.
    ///
    /// # Panics
    ///
    /// Panics if `p_phys` is outside `(0, p_thres)`.
    pub fn with_p_phys(mut self, p_phys: f64) -> Self {
        assert!(
            p_phys > 0.0 && p_phys < self.p_thres,
            "p_phys must be in (0, p_thres), got {p_phys}"
        );
        self.p_phys = p_phys;
        self
    }

    /// Validates internal consistency (Λ > 1 so errors are suppressed).
    pub fn is_below_threshold(&self) -> bool {
        self.lambda() > 1.0
    }
}

impl fmt::Display for ErrorModelParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C = {}, p_phys = {}, p_thres = {}, Λ = {}, α = {:.4}",
            self.c,
            self.p_phys,
            self.p_thres,
            self.lambda(),
            self.alpha
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = ErrorModelParams::paper();
        assert_eq!(p.c, 0.1);
        assert!((p.lambda() - 10.0).abs() < 1e-12);
        assert!((p.alpha - 1.0 / 6.0).abs() < 1e-12);
        assert!(p.is_below_threshold());
    }

    #[test]
    fn alpha_override() {
        let p = ErrorModelParams::paper().with_alpha(0.5);
        assert_eq!(p.alpha, 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_alpha() {
        let _ = ErrorModelParams::paper().with_alpha(-0.1);
    }

    #[test]
    #[should_panic(expected = "p_phys")]
    fn rejects_above_threshold_p() {
        let _ = ErrorModelParams::paper().with_p_phys(0.02);
    }

    #[test]
    fn display_mentions_lambda() {
        assert!(ErrorModelParams::paper().to_string().contains("Λ = 10"));
    }
}
