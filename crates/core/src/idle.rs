//! Idle-storage syndrome-extraction frequency optimization (Fig. 11c,d).
//!
//! A stored qubit decoheres at rate `1/T_coh` between SE rounds; each SE
//! round itself injects gate noise at roughly [`SE_LOCATIONS_PER_QUBIT`] ≈ 10
//! physical fault locations per data qubit (four two-qubit gates touching the
//! qubit plus preparation/measurement shares). In the Eq. (3) language, the
//! idle contribution `Δt/T_coh` adds to the per-round gate contribution
//! `n_loc·p_phys`, so the logical error per qubit per round is
//!
//! ```text
//! p_L(Δt) = C · ( (1 + Δt/(n_loc·p_phys·T_coh)) / Λ )^((d+1)/2)
//! ```
//!
//! and the error *per unit time* is `p_L(Δt)/Δt`. Too-frequent rounds pay
//! gate noise repeatedly; too-rare rounds let idle errors pile up — the
//! optimum `Δt* = n_loc·p_phys·T_coh/(k−1)` (k = (d+1)/2) sits where the idle
//! error is comparable to the per-round gate error, ≈ 8 ms for the paper's
//! 10 s coherence time at d = 27 — the paper's Fig. 11(c,d) and its §IV.2
//! choice of "a QEC round for storage qubits every 8 ms".

use crate::params::ErrorModelParams;

/// Effective physical fault locations per data qubit per SE round (four
/// two-qubit gates ≈ 8 shared locations plus reset/readout shares).
pub const SE_LOCATIONS_PER_QUBIT: f64 = 10.0;

/// Logical error per qubit per SE round when idling with period `dt` seconds
/// at coherence time `t_coh`.
///
/// # Panics
///
/// Panics if `dt` or `t_coh` is not strictly positive.
pub fn idle_error_per_round(params: &ErrorModelParams, distance: u32, dt: f64, t_coh: f64) -> f64 {
    assert!(dt.is_finite() && dt > 0.0, "SE period must be positive");
    assert!(
        t_coh.is_finite() && t_coh > 0.0,
        "coherence time must be positive"
    );
    let idle_relative = dt / t_coh / (SE_LOCATIONS_PER_QUBIT * params.p_phys);
    let base = (1.0 + idle_relative) / params.lambda();
    params.c * base.powf(f64::from(distance + 1) / 2.0)
}

/// Logical error per qubit per second of storage at SE period `dt`.
pub fn idle_error_per_second(params: &ErrorModelParams, distance: u32, dt: f64, t_coh: f64) -> f64 {
    idle_error_per_round(params, distance, dt, t_coh) / dt
}

/// Smallest odd distance whose idle error per second meets `target`, at
/// period `dt`.
pub fn idle_distance_for_target(
    params: &ErrorModelParams,
    dt: f64,
    t_coh: f64,
    target_per_second: f64,
    max_distance: u32,
) -> Option<u32> {
    (3..=max_distance)
        .step_by(2)
        .find(|&d| idle_error_per_second(params, d, dt, t_coh) <= target_per_second)
}

/// The SE period minimizing the idle error per second at fixed distance,
/// found on a log grid over `[1 µs, t_coh]`.
pub fn optimal_idle_period(params: &ErrorModelParams, distance: u32, t_coh: f64) -> f64 {
    let mut best = (f64::INFINITY, 1e-3);
    let mut dt = 1e-6;
    while dt <= t_coh {
        let e = idle_error_per_second(params, distance, dt, t_coh);
        if e < best.0 {
            best = (e, dt);
        }
        dt *= 1.05;
    }
    best.1
}

/// One point of the Fig. 11(c,d) sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleSweepPoint {
    /// SE period in seconds.
    pub dt: f64,
    /// Logical error per qubit per second.
    pub error_per_second: f64,
    /// Relative space–time volume (d² for the distance meeting the target).
    pub relative_volume: Option<f64>,
}

/// Sweeps the SE period, reporting error rates and the volume of the distance
/// needed to meet `target_per_second` (Fig. 11c,d series).
pub fn sweep_idle_period(
    params: &ErrorModelParams,
    distance: u32,
    t_coh: f64,
    target_per_second: f64,
    periods: &[f64],
) -> Vec<IdleSweepPoint> {
    periods
        .iter()
        .map(|&dt| {
            let error = idle_error_per_second(params, distance, dt, t_coh);
            let volume = idle_distance_for_target(params, dt, t_coh, target_per_second, 199)
                .map(|d| f64::from(d) * f64::from(d));
            IdleSweepPoint {
                dt,
                error_per_second: error,
                relative_volume: volume,
            }
        })
        .collect()
}

/// The closed-form optimum of the smooth model:
/// `Δt* = n_loc·p_phys·T_coh/(k−1)` with `k = (d+1)/2`; the analytic
/// counterpart of [`optimal_idle_period`].
pub fn analytic_optimal_idle_period(params: &ErrorModelParams, distance: u32, t_coh: f64) -> f64 {
    let k = f64::from(distance + 1) / 2.0;
    SE_LOCATIONS_PER_QUBIT * params.p_phys * t_coh / (k - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p() -> ErrorModelParams {
        ErrorModelParams::paper()
    }

    #[test]
    fn optimum_is_order_10_ms_at_10s_coherence() {
        // Paper §IV.2: "a QEC round for storage qubits every 8 ms" at 10 s.
        let dt = optimal_idle_period(&p(), 27, 10.0);
        assert!(
            (1e-3..30e-3).contains(&dt),
            "optimal period {dt} should be of order 10 ms"
        );
    }

    #[test]
    fn optimum_roughly_independent_of_distance() {
        // Fig. 11(c): the optimal frequency barely moves with d.
        let d15 = optimal_idle_period(&p(), 15, 10.0);
        let d35 = optimal_idle_period(&p(), 35, 10.0);
        assert!(d15 / d35 < 5.0 && d35 / d15 < 5.0, "{d15} vs {d35}");
    }

    #[test]
    fn error_per_second_is_u_shaped() {
        let params = p();
        let fast = idle_error_per_second(&params, 27, 1e-5, 10.0);
        let opt = idle_error_per_second(&params, 27, 8e-3, 10.0);
        let slow = idle_error_per_second(&params, 27, 1.0, 10.0);
        assert!(opt < fast, "opt {opt} vs fast {fast}");
        assert!(opt < slow, "opt {opt} vs slow {slow}");
    }

    #[test]
    fn shorter_coherence_needs_faster_rounds() {
        let long = optimal_idle_period(&p(), 27, 100.0);
        let short = optimal_idle_period(&p(), 27, 1.0);
        assert!(short < long);
    }

    #[test]
    fn analytic_and_grid_optimum_agree() {
        let grid = optimal_idle_period(&p(), 27, 10.0);
        let analytic = analytic_optimal_idle_period(&p(), 27, 10.0);
        assert!(
            (grid / analytic - 1.0).abs() < 0.2,
            "grid {grid} vs analytic {analytic}"
        );
    }

    #[test]
    fn sweep_reports_volumes() {
        let pts = sweep_idle_period(&p(), 27, 10.0, 1e-10, &[1e-4, 1e-3, 1e-2, 1e-1]);
        assert_eq!(pts.len(), 4);
        assert!(pts.iter().any(|pt| pt.relative_volume.is_some()));
    }

    proptest! {
        /// Idle error per round grows with the period.
        #[test]
        fn idle_error_monotone_in_dt(k in 1u32..20, dt_ms in 1.0f64..100.0) {
            let d = 2 * k + 1;
            let dt = dt_ms * 1e-3;
            prop_assert!(
                idle_error_per_round(&p(), d, dt * 2.0, 10.0)
                    > idle_error_per_round(&p(), d, dt, 10.0)
            );
        }

        /// At very short periods the model reduces to the memory limit.
        #[test]
        fn short_period_recovers_memory(k in 1u32..20) {
            let d = 2 * k + 1;
            let per_round = idle_error_per_round(&p(), d, 1e-9, 10.0);
            let memory = crate::logical::memory_error_per_round(&p(), d);
            prop_assert!((per_round / memory - 1.0).abs() < 1e-3);
        }
    }
}
