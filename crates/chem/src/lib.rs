//! Quantum-chemistry resource estimation on the transversal architecture
//! (paper §III.3, Fig. 5e).
//!
//! State-of-the-art ground-state-energy algorithms use qubitized quantum
//! phase estimation over a tensor-hypercontraction (THC) Hamiltonian
//! representation [77, 80]. Each qubitization step is a PREPARE /
//! PREPARE† / SELECT block, and the paper observes these decompose onto the
//! *same* transversal building blocks as factoring:
//!
//! * PREPARE and PREPARE† are dominated by **table look-up** (90–95% of their
//!   T-count, per Ref. [77]);
//! * SELECT splits into a look-up (≈30%) and controlled rotations (≈70%),
//!   with rotations implemented as **phase-gradient additions** [21].
//!
//! This crate maps a THC instance onto [`raa_gadgets`] look-ups and adders
//! and reuses the factoring architecture's factory/error machinery to
//! produce a full estimate, transferring the paper's reduced space–time
//! volume to chemistry workloads.

#![forbid(unsafe_code)]

use raa_core::{ArchContext, SpaceTime};
use raa_factory::CczFactory;
use raa_gadgets::{CuccaroAdder, LookupTable};
use std::fmt;

/// Fraction of SELECT work done by rotations (Ref. [77] Fig. 5: ≈70%).
const SELECT_ROTATION_FRACTION: f64 = 0.7;

/// A tensor-hypercontraction chemistry instance.
///
/// # Example
///
/// ```
/// use raa_chem::ThcInstance;
///
/// let femoco = ThcInstance::femoco_like();
/// assert!(femoco.qubitization_steps() > 1e5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThcInstance {
    /// Hamiltonian 1-norm λ in Hartree.
    pub lambda: f64,
    /// THC rank (number of auxiliary factors M).
    pub thc_rank: u32,
    /// Spin orbitals N.
    pub spin_orbitals: u32,
    /// Target phase-estimation accuracy ε in Hartree (chemical accuracy:
    /// 1.6 mHa).
    pub epsilon: f64,
    /// Coefficient register precision in bits.
    pub coeff_bits: u32,
}

impl ThcInstance {
    /// A FeMoco-scale benchmark instance (λ ≈ 306 Ha, M ≈ 350, N = 108, the
    /// scale of Ref. [77]'s headline molecule).
    pub fn femoco_like() -> Self {
        Self {
            lambda: 306.0,
            thc_rank: 350,
            spin_orbitals: 108,
            epsilon: 1.6e-3,
            coeff_bits: 20,
        }
    }

    /// A small active-space test instance.
    pub fn small_molecule() -> Self {
        Self {
            lambda: 10.0,
            thc_rank: 50,
            spin_orbitals: 20,
            epsilon: 1.6e-3,
            coeff_bits: 15,
        }
    }

    /// Number of qubitization steps for phase estimation: `⌈π λ / (2 ε)⌉`.
    pub fn qubitization_steps(&self) -> f64 {
        (std::f64::consts::PI * self.lambda / (2.0 * self.epsilon)).ceil()
    }

    /// Address bits of the PREPARE coefficient table: the THC auxiliary
    /// register indexes `M(M+1)/2 + N/2` coefficients.
    pub fn prepare_address_bits(&self) -> u32 {
        let entries = u64::from(self.thc_rank) * u64::from(self.thc_rank + 1) / 2
            + u64::from(self.spin_orbitals / 2);
        (64 - entries.leading_zeros()).max(1)
    }
}

impl fmt::Display for ThcInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "THC instance: lambda = {} Ha, M = {}, N = {}, eps = {} Ha",
            self.lambda, self.thc_rank, self.spin_orbitals, self.epsilon
        )
    }
}

/// Resource estimate for a chemistry instance on the transversal architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChemistryEstimate {
    /// Peak physical qubits.
    pub qubits: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Total |CCZ⟩ states consumed.
    pub ccz_total: f64,
    /// Total failure probability.
    pub total_error: f64,
    /// Magic-state factories instantiated.
    pub factories: u64,
}

impl ChemistryEstimate {
    /// Runtime in days.
    pub fn days(&self) -> f64 {
        self.seconds / 86_400.0
    }

    /// The space–time cost.
    pub fn space_time(&self) -> SpaceTime {
        SpaceTime::new(self.qubits, self.seconds)
    }
}

impl fmt::Display for ChemistryEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}M qubits, {:.2} days, {:.2e} CCZ (p_fail {:.1}%)",
            self.qubits / 1e6,
            self.days(),
            self.ccz_total,
            self.total_error * 100.0
        )
    }
}

/// Builds a SELECT-SWAP-batched QROM over `entries` rows of `m` bits: a
/// batch of `k = √(entries/m)` rows is loaded per scanned address and routed
/// by a swap network (the advanced-QROM construction Ref. [77] relies on),
/// shrinking the scan depth by `k` at the cost of a `k`-fold wider output.
fn select_swap_lookup(entries: u64, m: u32) -> LookupTable {
    let batch = ((entries as f64 / f64::from(m.max(1))).sqrt().floor() as u64).max(1);
    let scanned = entries.div_ceil(batch).max(2);
    let w_eff = (64 - (scanned - 1).leading_zeros()).max(1);
    LookupTable::new(w_eff, (m as u64 * batch).min(1 << 22) as u32)
}

/// Estimates the cost of `instance` in `ctx`, using a 5% CCZ error budget
/// as in the factoring analysis.
///
/// Each qubitization step costs: PREPARE + PREPARE† (two coefficient
/// look-ups, SELECT-SWAP batched) plus SELECT (one smaller look-up and two
/// phase-gradient rotations realized as `coeff_bits`-bit additions).
pub fn estimate(instance: &ThcInstance, ctx: &ArchContext) -> ChemistryEstimate {
    let steps = instance.qubitization_steps();
    let prepare_entries = u64::from(instance.thc_rank) * u64::from(instance.thc_rank + 1) / 2
        + u64::from(instance.spin_orbitals / 2);
    let prepare = select_swap_lookup(
        prepare_entries,
        instance.coeff_bits + instance.spin_orbitals,
    );
    let select_lookup = select_swap_lookup(prepare_entries / 4 + 1, instance.spin_orbitals.max(8));
    let rotation_adder = CuccaroAdder::without_runways(instance.coeff_bits);

    let per_step_ccz = 2.0 * prepare.ccz_count() as f64
        + select_lookup.ccz_count() as f64
        + 2.0 * rotation_adder.toffoli_count() as f64 / SELECT_ROTATION_FRACTION
            * SELECT_ROTATION_FRACTION;
    let per_step_seconds = 2.0 * prepare.duration(ctx)
        + select_lookup.duration(ctx)
        + 2.0 * rotation_adder.duration(ctx);
    let per_step_error = 2.0 * prepare.logical_error(ctx)
        + select_lookup.logical_error(ctx)
        + 2.0 * rotation_adder.logical_error(ctx);

    let ccz_total = steps * per_step_ccz;
    let ccz_target = 0.05 / ccz_total;
    let factory = CczFactory::for_target(ctx, ccz_target)
        .expect("chemistry CCZ target unreachable at this distance");
    let demand = per_step_ccz / per_step_seconds;
    let factories = factory.count_for_demand(ctx, demand).max(1);

    let qubits = prepare.qubits(ctx)
        + select_lookup.qubits(ctx)
        + rotation_adder.qubits(ctx)
        + factories as f64 * factory.qubits(ctx);
    let seconds = steps * per_step_seconds;
    let total_error = (steps * per_step_error + ccz_total * factory.output_error(ctx)).min(1.0);

    ChemistryEstimate {
        qubits,
        seconds,
        ccz_total,
        total_error,
        factories,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn femoco_scale_is_plausible() {
        // Ref. [77]-scale THC FeMoco runs cost ~3e5 steps... λπ/2ε ≈ 3e5;
        // at ~0.5 s per step that is days-scale on the transversal machine.
        let inst = ThcInstance::femoco_like();
        let est = estimate(&inst, &ArchContext::paper());
        assert!(
            est.days() > 0.5 && est.days() < 200.0,
            "days = {}",
            est.days()
        );
        assert!(
            est.qubits > 1e5 && est.qubits < 1e8,
            "qubits = {}",
            est.qubits
        );
        assert!(est.total_error < 0.5, "p = {}", est.total_error);
    }

    #[test]
    fn qubitization_step_count() {
        let inst = ThcInstance::femoco_like();
        let steps = inst.qubitization_steps();
        let expect = std::f64::consts::PI * 306.0 / (2.0 * 1.6e-3);
        assert!((steps - expect).abs() < 1.0);
    }

    #[test]
    fn prepare_table_size_covers_rank() {
        let inst = ThcInstance::femoco_like();
        let w = inst.prepare_address_bits();
        let entries = 350u64 * 351 / 2 + 54;
        assert!(1u64 << w >= entries, "w = {w}");
        assert!(1u64 << (w - 1) < entries, "w = {w} too large");
    }

    #[test]
    fn small_molecule_cheaper_than_femoco() {
        let ctx = ArchContext::paper();
        let small = estimate(&ThcInstance::small_molecule(), &ctx);
        let big = estimate(&ThcInstance::femoco_like(), &ctx);
        assert!(small.space_time().volume() < big.space_time().volume());
    }

    #[test]
    fn display_formats() {
        let inst = ThcInstance::small_molecule();
        assert!(inst.to_string().contains("lambda"));
        let est = estimate(&inst, &ArchContext::paper());
        assert!(est.to_string().contains("days"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Tighter accuracy targets cost more steps and more volume.
        #[test]
        fn accuracy_monotone(eps_exp in 2.0f64..4.0) {
            let ctx = ArchContext::paper();
            let mut a = ThcInstance::small_molecule();
            a.epsilon = 10f64.powf(-eps_exp);
            let mut b = a;
            b.epsilon = a.epsilon / 2.0;
            let ea = estimate(&a, &ctx);
            let eb = estimate(&b, &ctx);
            prop_assert!(eb.seconds > ea.seconds);
        }
    }
}
