//! Offline shim of the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of rayon's API its code uses: `into_par_iter()` on
//! `Range<usize>` with `map` / `map_init` / `collect::<Vec<_>>()`, plus
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`] /
//! [`current_num_threads`].
//!
//! Scheduling is pull-based: worker threads claim the next index from a
//! shared atomic counter, so indices are claimed in increasing order and the
//! set of processed indices is always a contiguous prefix per claim order.
//! Results are returned in index order regardless of which thread produced
//! them — callers observe deterministic output for deterministic per-index
//! work.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads parallel iterators will use on this thread:
/// an installed pool's size, else `RAYON_NUM_THREADS`, else all cores.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_THREADS.with(|t| t.get()) {
        return n;
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Builder for a [`ThreadPool`] (shim: the pool is a thread-count handle;
/// worker threads are scoped to each parallel call).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads; `0` means the global default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// Error building a thread pool (never produced by the shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A handle fixing the parallelism of iterators run under [`install`].
///
/// [`install`]: ThreadPool::install
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `f` with this pool's thread count governing parallel iterators.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|t| t.replace(Some(self.num_threads)));
        let out = f();
        POOL_THREADS.with(|t| t.set(prev));
        out
    }
}

pub mod iter {
    use super::*;

    /// Conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// The parallel iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// A parallel iterator: indexed work executed across worker threads.
    ///
    /// The shim evaluates eagerly on `collect`; `map` and `map_init` build
    /// composed closures over the index space.
    pub trait ParallelIterator: Sized {
        /// The element type.
        type Item: Send;

        /// Number of items.
        fn len(&self) -> usize;

        /// Whether the iterator is empty.
        fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Produces the item at `index` (called from worker threads).
        fn item_at(&self, index: usize) -> Self::Item;

        /// Maps each item through `f`.
        fn map<F, T>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Item) -> T + Sync,
            T: Send,
        {
            Map { base: self, f }
        }

        /// Maps each item through `f` with per-worker state built by `init`.
        fn map_init<I, S, F, T>(self, init: I, f: F) -> MapInit<Self, I, F>
        where
            I: Fn() -> S + Sync,
            F: Fn(&mut S, Self::Item) -> T + Sync,
            T: Send,
        {
            MapInit {
                base: self,
                init,
                f,
            }
        }

        /// Executes the pipeline, returning results in index order.
        ///
        /// Adapters with per-worker state (e.g. [`MapInit`]) override this to
        /// build their state once per worker thread.
        fn run(self) -> Vec<Self::Item>
        where
            Self: Sync,
        {
            let this = &self;
            run_indexed(this.len(), |i| this.item_at(i))
        }

        /// Executes the pipeline, collecting results in index order.
        fn collect<C: FromParallelIterator<Self::Item>>(self) -> C
        where
            Self: Sync,
        {
            C::from_par_iter(self)
        }
    }

    /// Collection from a parallel iterator (shim: `Vec<T>` only).
    pub trait FromParallelIterator<T: Send>: Sized {
        /// Runs the iterator and gathers its results.
        fn from_par_iter<P>(par: P) -> Self
        where
            P: ParallelIterator<Item = T> + Sync;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_par_iter<P>(par: P) -> Self
        where
            P: ParallelIterator<Item = T> + Sync,
        {
            par.run()
        }
    }

    /// A range of `usize` as a parallel iterator.
    pub struct ParRange {
        range: Range<usize>,
    }

    impl IntoParallelIterator for Range<usize> {
        type Item = usize;
        type Iter = ParRange;

        fn into_par_iter(self) -> ParRange {
            ParRange { range: self }
        }
    }

    impl ParallelIterator for ParRange {
        type Item = usize;

        fn len(&self) -> usize {
            self.range.end.saturating_sub(self.range.start)
        }

        fn item_at(&self, index: usize) -> usize {
            self.range.start + index
        }
    }

    /// See [`ParallelIterator::map`].
    pub struct Map<P, F> {
        base: P,
        f: F,
    }

    impl<P, F, T> ParallelIterator for Map<P, F>
    where
        P: ParallelIterator,
        F: Fn(P::Item) -> T + Sync,
        T: Send,
    {
        type Item = T;

        fn len(&self) -> usize {
            self.base.len()
        }

        fn item_at(&self, index: usize) -> T {
            (self.f)(self.base.item_at(index))
        }
    }

    /// See [`ParallelIterator::map_init`].
    pub struct MapInit<P, I, F> {
        base: P,
        init: I,
        f: F,
    }

    impl<P, I, S, F, T> ParallelIterator for MapInit<P, I, F>
    where
        P: ParallelIterator + Sync,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, P::Item) -> T + Sync,
        T: Send,
    {
        type Item = T;

        fn len(&self) -> usize {
            self.base.len()
        }

        fn item_at(&self, index: usize) -> T {
            // Pipelines nesting MapInit under further adapters pay a
            // per-item init; `run` below provides the per-worker path.
            let mut state = (self.init)();
            (self.f)(&mut state, self.base.item_at(index))
        }

        fn run(self) -> Vec<T>
        where
            Self: Sync,
        {
            let MapInit { base, init, f } = &self;
            run_indexed_init(base.len(), init, |state, i| f(state, base.item_at(i)))
        }
    }

    /// Pull-scheduled parallel execution of `f(0..len)`, results in order.
    fn run_indexed<T: Send>(len: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        run_indexed_init(len, &|| (), |(), i| f(i))
    }

    /// Pull-scheduled parallel execution with per-worker state.
    fn run_indexed_init<T: Send, S>(
        len: usize,
        init: &(impl Fn() -> S + Sync),
        f: impl Fn(&mut S, usize) -> T + Sync,
    ) -> Vec<T> {
        let threads = current_num_threads().min(len.max(1));
        if threads <= 1 || len <= 1 {
            let mut state = init();
            return (0..len).map(|i| f(&mut state, i)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut chunks: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut out = Vec::new();
                        let mut state = init();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= len {
                                break;
                            }
                            out.push((i, f(&mut state, i)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon-shim worker panicked"))
                .collect()
        });
        let mut slots: Vec<Option<T>> = (0..len).map(|_| None).collect();
        for chunk in chunks.iter_mut() {
            for (i, v) in chunk.drain(..) {
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index processed"))
            .collect()
    }
}

pub mod prelude {
    pub use crate::iter::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_in_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * 2);
        }
    }

    #[test]
    fn map_init_states_per_worker() {
        let v: Vec<usize> = (0..100usize)
            .into_par_iter()
            .map_init(
                || 0usize,
                |count, i| {
                    *count += 1; // worker-local state must not affect values
                    i
                },
            )
            .collect();
        assert_eq!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pool_install_controls_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
            let v: Vec<usize> = (0..50usize).into_par_iter().map(|i| i).collect();
            assert_eq!(v, (0..50).collect::<Vec<_>>());
        });
    }

    #[test]
    fn single_thread_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let v = pool.install(|| {
            (0..10usize)
                .into_par_iter()
                .map(|i| i * i)
                .collect::<Vec<_>>()
        });
        assert_eq!(v[9], 81);
    }

    #[test]
    fn empty_range() {
        let v: Vec<usize> = (5..5usize).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
    }
}
