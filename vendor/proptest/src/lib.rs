//! Offline shim of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of proptest's API its tests use: the [`proptest!`]
//! macro, [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`],
//! `any::<T>()`, range and tuple strategies, and
//! [`collection::vec`] / [`collection::btree_set`].
//!
//! Differences from real proptest: inputs are drawn from a fixed
//! per-test-deterministic RNG (so failures reproduce exactly), and there is
//! **no shrinking** — a failing case reports the drawn inputs as-is via the
//! panic message of the underlying assertion.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A source of random values of one type (shim: sampling only).
    pub trait Strategy {
        /// The value type produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.start..=<$t>::MAX)
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

    /// Types with a canonical "arbitrary value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            use rand::Rng;
            rng.random()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    use rand::Rng;
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum size (inclusive).
        pub min: usize,
        /// Maximum size (inclusive).
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.min..=self.max)
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with sizes in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy producing `BTreeSet`s of `element` values.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the effective size; bound the retries so
            // small value spaces still terminate.
            let mut tries = 0usize;
            while set.len() < n && tries < 10 * n + 32 {
                set.insert(self.element.sample(rng));
                tries += 1;
            }
            set
        }
    }

    /// A strategy for `BTreeSet`s with sizes in `size` (best effort when the
    /// value space is smaller than the requested size).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (shim: case count only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; the shim runs fewer because
            // cargo test executes in debug mode and several properties here
            // drive full stabilizer simulations per case.
            Self { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }
}

/// Deterministic per-test RNG: seeded from the test's path so every test
/// draws an independent but reproducible stream.
pub fn rng_for(test_path: &str) -> StdRng {
    // FNV-1a.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(#[$attr:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng =
                $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($arg,)*) = (
                    $($crate::strategy::Strategy::sample(&($strat), &mut __rng),)*
                );
                let _ = __case;
                $body
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    (config = ($cfg:expr);) => {};
}

/// Asserts a property within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Must appear directly in the [`proptest!`] body (it `continue`s the
/// case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_test() {
        use rand::Rng;
        let mut a = crate::rng_for("x::y");
        let mut b = crate::rng_for("x::y");
        assert_eq!(a.random::<u64>(), b.random::<u64>());
        let mut c = crate::rng_for("x::z");
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..60, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..60).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f = {f}");
        }

        #[test]
        fn tuples_and_collections(
            pair in (0u32..16, 0u8..4),
            bits in collection::vec(any::<bool>(), 1..6),
            xs in collection::btree_set((0i64..30, 0i64..30), 1..40),
        ) {
            prop_assert!(pair.0 < 16 && pair.1 < 4);
            prop_assert!(!bits.is_empty() && bits.len() <= 5);
            prop_assert!(!xs.is_empty() && xs.len() < 40);
            for &(a, b) in &xs {
                prop_assert!((0..30).contains(&a) && (0..30).contains(&b));
            }
        }

        #[test]
        fn assume_skips(mask in 0u8..) {
            prop_assume!(mask != 0);
            prop_assert!(mask.count_ones() >= 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(k in 1u32..20) {
            prop_assert_eq!(k.min(25), k);
            prop_assert_ne!(k, 0);
        }
    }
}
