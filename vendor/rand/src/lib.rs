//! Offline shim of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the rand 0.9 API its code actually uses:
//!
//! * [`RngCore`] / [`Rng`] / [`RngExt`] — `random::<T>()`, `random_bool`,
//!   `random_range` over integer and float ranges;
//! * [`SeedableRng`] with `seed_from_u64` (SplitMix64 key expansion);
//! * [`rngs::StdRng`] — xoshiro256++, a small, fast, high-quality PRNG;
//! * [`rng()`] — a non-deterministically seeded generator for doc examples.
//!
//! Determinism contract: `StdRng::seed_from_u64(s)` produces an identical
//! stream on every platform and every run, which the Monte-Carlo harness
//! relies on for thread-count-independent results.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly from an RNG (the shim's `StandardUniform`).
pub trait UniformSample: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable uniformly (the shim's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Lemire-style widening multiply: unbiased enough for
                // simulation use (bias < 2^-64 per draw).
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as UniformSample>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    #[inline]
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Range-sampling extension (split out of [`Rng`] in this shim).
pub trait RngExt: Rng {
    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64` via SplitMix64 key expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: the standard seed-expansion generator.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The shim's standard RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; perturb it.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    /// A lazily seeded, non-deterministic generator (shim of `ThreadRng`).
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a non-deterministically seeded generator (shim of `rand::rng()`).
pub fn rng() -> rngs::ThreadRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let tid = std::thread::current().id();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    use std::hash::{Hash, Hasher};
    (nanos, tid).hash(&mut h);
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(h.finish()))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.random_range(1..4u32);
            assert!((1..4).contains(&v));
            let w = r.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.random_range(0..=3u8);
            assert!(i <= 3);
        }
    }

    #[test]
    fn range_coverage_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[r.random_range(0..3) as usize] += 1;
        }
        for c in counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.1, "counts {counts:?}");
        }
    }

    #[test]
    fn bool_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn thread_rng_works() {
        let mut r = rng();
        let _: u64 = r.random();
        let _ = r.random_range(0..10usize);
    }
}
