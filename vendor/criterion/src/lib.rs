//! Offline shim of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a small wall-clock benchmark harness exposing the subset of
//! criterion's API its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Each benchmark is warmed up briefly, then sampled in adaptively sized
//! runs; the report prints min / median / mean per-iteration times. Pass a
//! substring on the command line (as with real criterion) to filter which
//! benchmarks run.
//!
//! Two environment knobs (shim extensions, for CI and tooling):
//!
//! * `RAA_BENCH_FAST=1` — shrink warm-up/measurement windows so a bench
//!   run is a smoke test (seconds, not minutes);
//! * `RAA_BENCH_JSON=<path>` — after the run, write a machine-readable
//!   report mapping each benchmark name to its median per-iteration time
//!   in nanoseconds (used to record `BENCH_<n>.json` trajectories);
//! * `RAA_BENCH_BASELINE=<path>` — after the run, verify every benchmark
//!   named in that earlier `BENCH_<n>.json` produced a measurement, and
//!   fail the process loudly otherwise — a silently vanished entry would
//!   read as "no regression" forever.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Completed (name, median ns) measurements, accumulated across groups for
/// the optional JSON report.
static RESULTS: Mutex<Vec<(String, u128)>> = Mutex::new(Vec::new());

/// Writes the `RAA_BENCH_JSON` report if requested: a single JSON object
/// mapping benchmark name → median per-iteration nanoseconds, in run
/// order. Called by [`criterion_main!`] after all groups finish; harmless
/// (and silent) when the variable is unset or no benchmarks ran.
pub fn write_json_report() {
    let Ok(path) = std::env::var("RAA_BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap();
    let mut out = String::from("{\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        // Bench names contain no characters needing JSON escapes beyond
        // these two.
        let escaped = name.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!("  \"{escaped}\": {ns}{sep}\n"));
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("failed to write bench report to {path}: {e}");
    } else {
        println!("wrote bench report ({} entries) to {path}", results.len());
    }
}

/// Benchmark names present in a baseline report but absent from
/// `current`. The baseline is parsed with the same line shape
/// [`write_json_report`] emits (`  "name": ns,`), so any earlier
/// `BENCH_<n>.json` works as input.
fn missing_from_baseline(baseline: &str, current: &[(String, u128)]) -> Vec<String> {
    let mut missing = Vec::new();
    for line in baseline.lines() {
        let Some(rest) = line.trim().strip_prefix('"') else {
            continue;
        };
        let Some((name, _)) = rest.rsplit_once('"') else {
            continue;
        };
        if !current.iter().any(|(n, _)| n == name) {
            missing.push(name.to_string());
        }
    }
    missing
}

/// Fails the run loudly when a benchmark tracked in the
/// `RAA_BENCH_BASELINE` report produced no measurement this run: a
/// renamed or deleted bench entry would otherwise vanish from the next
/// `BENCH_<n>.json` and read as "no regression" forever. Called by
/// [`criterion_main!`] after [`write_json_report`]; silent when the
/// variable is unset. Run without a CLI filter when the baseline check is
/// on — a filtered run legitimately skips benchmarks and will fail here.
pub fn check_baseline_report() {
    let Ok(path) = std::env::var("RAA_BENCH_BASELINE") else {
        return;
    };
    let baseline = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("RAA_BENCH_BASELINE: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let results = RESULTS.lock().unwrap();
    let missing = missing_from_baseline(&baseline, &results);
    if !missing.is_empty() {
        eprintln!(
            "RAA_BENCH_BASELINE: {} benchmark(s) recorded in {path} produced no measurement:",
            missing.len()
        );
        for name in &missing {
            eprintln!("  - {name}");
        }
        eprintln!("renaming or deleting a bench entry must be a deliberate baseline update");
        std::process::exit(1);
    }
    println!(
        "baseline coverage ok: all {} benchmark(s) in {path} were measured",
        baseline
            .lines()
            .filter(|l| l.trim().starts_with('"'))
            .count()
    );
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (shim: informational only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Benchmark driver handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    warm_up: Duration,
    measure: Duration,
    target_runs: u32,
}

impl Bencher {
    fn new(warm_up: Duration, measure: Duration, target_runs: u32) -> Self {
        Self {
            samples: Vec::new(),
            warm_up,
            measure,
            target_runs,
        }
    }

    /// Benchmarks `routine`, timing repeated calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters < 3 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters as u32;

        // Sample in runs sized so each run takes ~measure/target_runs.
        let target_runs = self.target_runs;
        let run_len = (self.measure.as_nanos() / target_runs as u128)
            .checked_div(per_iter.as_nanos().max(1))
            .unwrap_or(1)
            .clamp(1, 1_000_000) as u32;
        let deadline = Instant::now() + self.measure;
        for _ in 0..target_runs {
            let t0 = Instant::now();
            for _ in 0..run_len {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / run_len);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Benchmarks `routine` on fresh inputs from `setup`, timing only
    /// `routine`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Warm-up.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut spent = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up || warm_iters < 3 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            spent += t0.elapsed();
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = spent / warm_iters as u32;

        let target_runs = self.target_runs;
        let run_len = (self.measure.as_nanos() / target_runs as u128)
            .checked_div(per_iter.as_nanos().max(1))
            .unwrap_or(1)
            .clamp(1, 1_000_000) as u32;
        let deadline = Instant::now() + self.measure;
        for _ in 0..target_runs {
            let mut run_time = Duration::ZERO;
            for _ in 0..run_len {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                run_time += t0.elapsed();
            }
            self.samples.push(run_time / run_len);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        self.samples.sort();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        RESULTS
            .lock()
            .unwrap()
            .push((name.to_string(), median.as_nanos()));
        println!(
            "{name:<50} min {:>12}  median {:>12}  mean {:>12}",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark registry (shim of `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    warm_up: Duration,
    measure: Duration,
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries as `<bin> --bench [filter]`; any
        // non-flag argument is a substring filter, as with real criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        let fast = std::env::var("RAA_BENCH_FAST").is_ok_and(|v| !v.is_empty() && v != "0");
        let (warm_up, measure, sample_size) = if fast {
            (Duration::from_millis(30), Duration::from_millis(120), 5)
        } else {
            (Duration::from_millis(300), Duration::from_millis(1500), 20)
        };
        Self {
            filter,
            warm_up,
            measure,
            sample_size,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    fn run_one(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher::new(self.warm_up, self.measure, self.sample_size);
        f(&mut b);
        b.report(name);
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnOnce(&mut Bencher)) {
        self.run_one(name.as_ref(), f);
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks reported as `group/name`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, name: impl AsRef<str>, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name.as_ref());
        self.criterion.run_one(&full, f);
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in real criterion. Supports both
/// the positional form and the `name = ...; config = ...; targets = ...`
/// form.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, as in real criterion. Shim
/// extensions: after all groups run, the optional `RAA_BENCH_JSON` report
/// is written (see [`write_json_report`]) and the optional
/// `RAA_BENCH_BASELINE` coverage check runs (see
/// [`check_baseline_report`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
            $crate::check_baseline_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs() {
        let mut c = fast_criterion();
        c.filter = None;
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = fast_criterion();
        c.filter = None;
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = fast_criterion();
        c.filter = Some("nomatch".into());
        let mut ran = false;
        c.bench_function("other", |b| {
            b.iter(|| ());
            ran = true;
        });
        assert!(!ran);
    }

    #[test]
    fn baseline_diff_spots_vanished_entries() {
        let baseline =
            "{\n  \"streaming/d5\": 19510507,\n  \"decoders/matching_d5\": 17252582\n}\n";
        let current = vec![("streaming/d5".to_string(), 2_881_000u128)];
        assert_eq!(
            missing_from_baseline(baseline, &current),
            vec!["decoders/matching_d5".to_string()]
        );
        let full = vec![
            ("streaming/d5".to_string(), 1u128),
            ("decoders/matching_d5".to_string(), 2),
            ("brand/new_entry".to_string(), 3),
        ];
        assert!(missing_from_baseline(baseline, &full).is_empty());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains(" s"));
    }
}
